package runner

import (
	"bytes"
	"log/slog"
	"math"
	"testing"
	"time"
)

// TestProgressFirstTick pins the degenerate heartbeat snapshots: a tick
// that fires before any cell has completed (or before the clock has
// advanced) must report zero — not NaN, not Inf, not a bogus 0s ETA
// presented as knowledge.
func TestProgressFirstTick(t *testing.T) {
	cases := []struct {
		name                string
		done, total, failed int
		elapsed, busy       time.Duration
		jobs                int
		wantETA             time.Duration
		wantUtil            float64
	}{
		{name: "nothing done yet", total: 10, elapsed: 5 * time.Millisecond, jobs: 4},
		{name: "zero elapsed", done: 2, total: 10, jobs: 4},
		{name: "zero elapsed and zero done", total: 10, jobs: 4},
		{name: "zero jobs", done: 2, total: 10, elapsed: time.Second, busy: time.Second,
			wantETA: 4 * time.Second},
		{name: "all done", done: 10, total: 10, elapsed: time.Second,
			busy: 2 * time.Second, jobs: 2, wantUtil: 1},
		{name: "mid-run", done: 5, total: 10, failed: 1, elapsed: 10 * time.Second,
			busy: 15 * time.Second, jobs: 2, wantETA: 10 * time.Second, wantUtil: 0.75},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pr := computeProgress(tc.done, tc.total, tc.failed, tc.elapsed, tc.busy, tc.jobs)
			if pr.Done != tc.done || pr.Total != tc.total || pr.Failed != tc.failed || pr.Elapsed != tc.elapsed {
				t.Errorf("counters not passed through: %+v", pr)
			}
			if pr.ETA != tc.wantETA {
				t.Errorf("ETA = %v, want %v", pr.ETA, tc.wantETA)
			}
			if pr.Utilization != tc.wantUtil {
				t.Errorf("Utilization = %v, want %v", pr.Utilization, tc.wantUtil)
			}
			if math.IsNaN(pr.Utilization) || math.IsInf(pr.Utilization, 0) {
				t.Errorf("Utilization is not finite: %v", pr.Utilization)
			}
		})
	}
}

// TestProgressFirstTickLogLine pins the rendered first-tick heartbeat: the
// structured log line a user actually sees at tick one of a long sweep.
func TestProgressFirstTickLogLine(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{} // drop the wall-clock stamp for determinism
			}
			return a
		},
	}))
	first := computeProgress(0, 42, 0, 0, 0, 8)
	SlogSink{Logger: l}.Progress(first)
	got := buf.String()
	want := `level=INFO msg="runner heartbeat" progress.done=0 progress.total=42` +
		` progress.failed=0 progress.elapsed=0s progress.eta=0s progress.utilization=0` + "\n"
	if got != want {
		t.Errorf("first-tick heartbeat line:\n got %q\nwant %q", got, want)
	}
}
