package runner

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ccr/internal/buildinfo"
	"ccr/internal/store"
	"ccr/internal/telemetry"
)

// populatedManifest runs a small real pool so the manifest carries every
// section a full experiment run produces: cells (one failed), workers,
// caches, telemetry summaries, failure totals and the build version.
func populatedManifest(t *testing.T) *Manifest {
	t.Helper()
	m := NewManifest("runner-test -jobs 2", 2)
	p := &Pool{Jobs: 2, Manifest: m}
	results := p.Run(context.Background(), []Cell{
		{ID: "ok/a", Do: func(context.Context) error { return nil }},
		{ID: "ok/b", Do: func(context.Context) error { return nil }},
		{ID: "bad/c", Do: func(context.Context) error { return errors.New("boom") }},
	})
	if Errs(results) == nil {
		t.Fatal("expected one failing cell")
	}
	m.SetCache("compile", CacheStats{Hits: 7, Misses: 3})
	m.SetTelemetry("ok/a", telemetry.Summary{
		Regions: 2, Lookups: 100, Hits: 90, MissCold: 2, MissInput: 8,
		Commits: 10, Invalidated: 4, Invalidations: 3})
	m.Finish()
	return m
}

// TestManifestJSONRoundTrip serializes a fully populated manifest and
// decodes it back, requiring every section to survive unchanged — the
// guarantee downstream tooling consuming -manifest files depends on.
func TestManifestJSONRoundTrip(t *testing.T) {
	m := populatedManifest(t)
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest JSON does not decode: %v\n%s", err, data)
	}

	if back.Command != m.Command || back.Jobs != m.Jobs || back.GOMAXPROCS != m.GOMAXPROCS {
		t.Errorf("header fields diverged: %s/%d/%d vs %s/%d/%d",
			back.Command, back.Jobs, back.GOMAXPROCS, m.Command, m.Jobs, m.GOMAXPROCS)
	}
	if back.Version != m.Version {
		t.Errorf("version block diverged: %+v vs %+v", back.Version, m.Version)
	}
	if !reflect.DeepEqual(back.Cells, m.Cells) {
		t.Errorf("cells diverged:\n%+v\n%+v", back.Cells, m.Cells)
	}
	if !reflect.DeepEqual(back.Workers, m.Workers) {
		t.Errorf("workers diverged:\n%+v\n%+v", back.Workers, m.Workers)
	}
	if !reflect.DeepEqual(back.Caches, m.Caches) {
		t.Errorf("caches diverged:\n%+v\n%+v", back.Caches, m.Caches)
	}
	if !reflect.DeepEqual(back.Telemetry, m.Telemetry) {
		t.Errorf("telemetry diverged:\n%+v\n%+v", back.Telemetry, m.Telemetry)
	}
	if back.FailedCells != 1 || len(back.Errors) != 1 {
		t.Errorf("failure totals diverged: failed=%d errors=%v", back.FailedCells, back.Errors)
	}
	if back.WallSeconds != m.WallSeconds || !back.Start.Equal(m.Start) {
		t.Errorf("timing fields diverged")
	}
}

// jsonFields returns the JSON key set a struct type serializes under,
// recursing is deliberately avoided: each type is pinned separately so a
// rename anywhere in the manifest tree fails exactly one golden.
func jsonFields(t *testing.T, v any) []string {
	t.Helper()
	var keys []string
	rt := reflect.TypeOf(v)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		if tag == "" {
			t.Fatalf("%s.%s has no json tag", rt.Name(), f.Name)
		}
		keys = append(keys, strings.Split(tag, ",")[0])
	}
	sort.Strings(keys)
	return keys
}

// TestManifestSchemaStability pins the JSON key set of every type reachable
// from a run manifest. Renaming or removing a key breaks consumers of
// saved manifests; this test makes such a change a deliberate,
// golden-updating act rather than an accident.
func TestManifestSchemaStability(t *testing.T) {
	golden := map[string][]string{
		"Manifest": {"caches", "cells", "command", "errors", "failed_cells",
			"gomaxprocs", "jobs", "panics", "retries", "start", "store",
			"telemetry", "timeouts", "version", "wall_seconds", "workers"},
		"CellRecord": {"attempts", "error", "history", "id", "panics",
			"seconds", "stack", "timeouts", "worker"},
		"Attempt":      {"error", "outcome", "seconds"},
		"WorkerRecord": {"busy_seconds", "cells", "utilization", "worker"},
		"CacheStats":   {"hits", "misses"},
		"store.Stats":  {"corrupt", "hits", "misses", "puts", "stale"},
		"buildinfo.Info": {"go_version", "module", "vcs_modified", "vcs_revision",
			"vcs_time", "version"},
		"telemetry.Summary": {"commit_fails", "commits", "dtm_commits",
			"dtm_evictions", "dtm_heads", "dtm_hits", "dtm_invalidated",
			"dtm_invalidations", "dtm_lookups", "evictions", "hits",
			"invalidated", "invalidations", "lookups", "miss_cold",
			"miss_conflict", "miss_input", "miss_mem_invalid", "regions"},
	}
	got := map[string][]string{
		"Manifest":          jsonFields(t, Manifest{}),
		"CellRecord":        jsonFields(t, CellRecord{}),
		"Attempt":           jsonFields(t, Attempt{}),
		"WorkerRecord":      jsonFields(t, WorkerRecord{}),
		"CacheStats":        jsonFields(t, CacheStats{}),
		"store.Stats":       jsonFields(t, store.Stats{}),
		"buildinfo.Info":    jsonFields(t, buildinfo.Info{}),
		"telemetry.Summary": jsonFields(t, telemetry.Summary{}),
	}
	for name, want := range golden {
		if !reflect.DeepEqual(got[name], want) {
			t.Errorf("%s JSON keys changed:\n got %v\nwant %v\n(update the golden only for a deliberate schema change)",
				name, got[name], want)
		}
	}
}

// TestPoolHeartbeat runs slow cells under a fast heartbeat and checks the
// progress snapshots: they arrive, carry the right total, count
// monotonically, and report sane elapsed/utilization values.
func TestPoolHeartbeat(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	p := &Pool{
		Jobs:      2,
		Heartbeat: time.Millisecond,
		Sink: ProgressFunc(func(pr Progress) {
			mu.Lock()
			snaps = append(snaps, pr)
			mu.Unlock()
		}),
	}
	const n = 4
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{ID: "sleep", Do: func(context.Context) error {
			time.Sleep(10 * time.Millisecond)
			return nil
		}}
	}
	if err := Errs(p.Run(context.Background(), cells)); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no heartbeat snapshots during a ~20ms run with a 1ms interval")
	}
	prev := -1
	for i, pr := range snaps {
		if pr.Total != n {
			t.Errorf("snapshot %d Total = %d, want %d", i, pr.Total, n)
		}
		if pr.Done < prev || pr.Done > n {
			t.Errorf("snapshot %d Done = %d not monotone in [0,%d] (prev %d)", i, pr.Done, n, prev)
		}
		prev = pr.Done
		if pr.Failed != 0 {
			t.Errorf("snapshot %d reports %d failures", i, pr.Failed)
		}
		if pr.Elapsed <= 0 {
			t.Errorf("snapshot %d Elapsed = %v", i, pr.Elapsed)
		}
		if pr.Utilization < 0 || pr.Utilization > 1.5 {
			t.Errorf("snapshot %d Utilization = %v", i, pr.Utilization)
		}
		if pr.Done > 0 && pr.Done < n && pr.ETA <= 0 {
			t.Errorf("snapshot %d mid-run ETA = %v, want > 0", i, pr.ETA)
		}
	}
}

// TestHeartbeatDisabledByDefault: a zero-interval pool must never call
// Progress.
func TestHeartbeatDisabledByDefault(t *testing.T) {
	called := false
	p := &Pool{Jobs: 1, Sink: ProgressFunc(func(Progress) { called = true })}
	p.Run(context.Background(), []Cell{
		{ID: "x", Do: func(context.Context) error { return nil }},
	})
	if called {
		t.Fatal("Progress called with Heartbeat = 0")
	}
}

// TestMultiSink: a MultiSink fans each snapshot to every member in order.
func TestMultiSink(t *testing.T) {
	var got []string
	a := ProgressFunc(func(Progress) { got = append(got, "a") })
	b := ProgressFunc(func(Progress) { got = append(got, "b") })
	MultiSink{a, b}.Progress(Progress{})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("MultiSink order = %v, want [a b]", got)
	}
}
