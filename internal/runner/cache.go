package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CacheStats counts cache outcomes. A hit includes waiting on another
// caller's in-flight computation — the work was shared either way.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Cache is a thread-safe, single-flight, content-keyed memo table for
// shared pipeline artifacts. When several cells ask for the same key
// concurrently, exactly one computes it and the rest block until the value
// is ready, so an artifact is never computed twice — not even transiently
// during a parallel sweep's warm-up.
type Cache struct {
	mu           sync.Mutex
	m            map[string]*flight
	hits, misses atomic.Int64
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[string]*flight{}} }

// Do returns the value cached under key, computing it with fn on first
// use. Errors are cached too: a deterministic failure is as shareable as a
// result. fn runs without any cache lock held, so it may call Do on other
// caches (or on this one with a different key).
func (c *Cache) Do(key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()
	c.misses.Add(1)
	func() {
		// A panicking fn must still complete the flight, or every
		// concurrent caller waiting on this key would block forever. The
		// panic is recorded as the flight's (cached) error and re-raised
		// for this caller, whose own recovery (runner cells recover) then
		// owns it.
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("runner: cache fn for %q panicked: %v", key, r)
				close(f.done)
				panic(r)
			}
			close(f.done)
		}()
		f.val, f.err = fn()
	}()
	return f.val, f.err
}

// Stats returns the hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len returns the number of distinct keys ever computed (or in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
