package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunDeterministicOrder checks that results come back in input order
// regardless of completion order, and that every cell runs exactly once.
func TestRunDeterministicOrder(t *testing.T) {
	const n = 64
	p := &Pool{Jobs: 8}
	var ran atomic.Int64
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{ID: fmt.Sprintf("c%02d", i), Do: func(context.Context) error {
			// Later cells finish earlier to scramble completion order.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			ran.Add(1)
			return nil
		}}
	}
	results := p.Run(context.Background(), cells)
	if ran.Load() != n {
		t.Fatalf("ran %d cells, want %d", ran.Load(), n)
	}
	for i, r := range results {
		if r.Index != i || r.ID != cells[i].ID {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.ID, r.Err)
		}
		if r.Worker < 0 || r.Worker >= 8 {
			t.Fatalf("cell %s: worker %d out of range", r.ID, r.Worker)
		}
	}
	if err := Errs(results); err != nil {
		t.Fatalf("Errs: %v", err)
	}
}

// TestRunCollectsErrors checks that a failing cell does not abort the
// sweep: every other cell still runs and all failures are joined.
func TestRunCollectsErrors(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	cells := make([]Cell, 10)
	for i := range cells {
		i := i
		cells[i] = Cell{ID: fmt.Sprintf("cell%d", i), Do: func(context.Context) error {
			ran.Add(1)
			if i == 3 || i == 7 {
				return boom
			}
			return nil
		}}
	}
	p := &Pool{Jobs: 4}
	results := p.Run(context.Background(), cells)
	if ran.Load() != int64(len(cells)) {
		t.Fatalf("ran %d cells, want %d", ran.Load(), len(cells))
	}
	err := Errs(results)
	if !errors.Is(err, boom) {
		t.Fatalf("joined error lost the cause: %v", err)
	}
	for _, id := range []string{"cell3", "cell7"} {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("error does not name %s: %v", id, err)
		}
	}
	if strings.Contains(err.Error(), "cell4") {
		t.Fatalf("healthy cell reported an error: %v", err)
	}
}

// TestRunCancellation checks that cancelling the context stops unstarted
// cells, which report the context error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	cells := make([]Cell, 32)
	for i := range cells {
		i := i
		cells[i] = Cell{ID: fmt.Sprintf("c%d", i), Do: func(ctx context.Context) error {
			if started.Add(1) == 2 {
				cancel()
			}
			<-ctx.Done()
			return ctx.Err()
		}}
	}
	p := &Pool{Jobs: 2}
	results := p.Run(ctx, cells)
	var canceled, skipped int
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("cell %s: err = %v, want context.Canceled", r.ID, r.Err)
		}
		if r.Wall == 0 {
			skipped++
		} else {
			canceled++
		}
	}
	if skipped == 0 {
		t.Fatal("no cell was skipped after cancellation")
	}
	if int64(canceled) != started.Load() {
		t.Fatalf("%d cells ran, %d recorded wall time", started.Load(), canceled)
	}
}

// TestCacheSingleFlight hammers one key from many goroutines and checks
// the computation runs exactly once while every caller gets the value.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("shared", func() (any, error) {
				calls.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss, %d hits", st, goroutines-1)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

// TestCacheCachesErrors checks a deterministic failure is computed once.
func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	boom := errors.New("boom")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := c.Do("bad", func() (any, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

// TestManifestRoundTrip runs a pool with a manifest attached and checks
// the serialized record.
func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("test-run", 2)
	p := &Pool{Jobs: 2, Manifest: m}
	cells := []Cell{
		{ID: "ok", Do: func(context.Context) error { return nil }},
		{ID: "fail", Do: func(context.Context) error { return errors.New("injected") }},
		{ID: "ok2", Do: func(context.Context) error { return nil }},
	}
	p.Run(context.Background(), cells)
	m.SetCache("compile", CacheStats{Hits: 3, Misses: 1})
	m.Finish()

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Command != "test-run" || got.Jobs != 2 || got.GOMAXPROCS < 1 {
		t.Fatalf("header: command=%q jobs=%d gomaxprocs=%d", got.Command, got.Jobs, got.GOMAXPROCS)
	}
	if len(got.Cells) != 3 {
		t.Fatalf("cells = %d", len(got.Cells))
	}
	byID := map[string]CellRecord{}
	for _, cr := range got.Cells {
		byID[cr.ID] = cr
	}
	if byID["fail"].Error == "" || byID["ok"].Error != "" {
		t.Fatalf("cell errors: %+v", got.Cells)
	}
	if len(got.Errors) != 1 {
		t.Fatalf("errors = %v", got.Errors)
	}
	if got.Caches["compile"].Hits != 3 {
		t.Fatalf("caches = %+v", got.Caches)
	}
	var totalCells int
	for _, w := range got.Workers {
		totalCells += w.Cells
	}
	if totalCells != 3 {
		t.Fatalf("worker cell counts sum to %d", totalCells)
	}
	if got.WallSeconds <= 0 {
		t.Fatalf("wall = %f", got.WallSeconds)
	}
}

// TestPoolDefaultJobs checks the GOMAXPROCS default and single-cell runs.
func TestPoolDefaultJobs(t *testing.T) {
	var p Pool // zero value: GOMAXPROCS workers
	results := p.Run(context.Background(), []Cell{
		{ID: "only", Do: func(context.Context) error { return nil }},
	})
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
	if got := p.Run(context.Background(), nil); len(got) != 0 {
		t.Fatalf("empty run returned %d results", len(got))
	}
}
