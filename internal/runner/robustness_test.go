package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicIsolation: a panicking cell is recovered into its own result —
// with the sentinel, the panic value and a stack — while every other cell
// completes normally.
func TestPanicIsolation(t *testing.T) {
	var ok atomic.Int64
	cells := []Cell{
		{ID: "good-0", Do: func(context.Context) error { ok.Add(1); return nil }},
		{ID: "boom", Do: func(context.Context) error { panic("kaboom") }},
		{ID: "good-1", Do: func(context.Context) error { ok.Add(1); return nil }},
	}
	p := Pool{Jobs: 2}
	results := p.Run(context.Background(), cells)
	if ok.Load() != 2 {
		t.Fatalf("healthy cells did not all run: %d", ok.Load())
	}
	r := results[1]
	if !errors.Is(r.Err, ErrCellPanic) {
		t.Fatalf("panic not classified: %v", r.Err)
	}
	if !strings.Contains(r.Err.Error(), "kaboom") || !strings.Contains(r.Err.Error(), "cell boom") {
		t.Fatalf("panic error lacks context: %v", r.Err)
	}
	if r.Panics != 1 || r.Stack == "" || !strings.Contains(r.Stack, "goroutine") {
		t.Fatalf("stack not captured: panics=%d stack=%q", r.Panics, r.Stack)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy cells polluted: %v / %v", results[0].Err, results[2].Err)
	}
}

// TestCellTimeout: an uncooperative cell (never polls its context) is
// abandoned after CellTimeout and reported with the sentinel.
func TestCellTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p := Pool{Jobs: 1, CellTimeout: 20 * time.Millisecond}
	results := p.Run(context.Background(), []Cell{
		{ID: "stuck", Do: func(context.Context) error { <-release; return nil }},
		{ID: "after", Do: func(context.Context) error { return nil }},
	})
	if !errors.Is(results[0].Err, ErrCellTimeout) {
		t.Fatalf("timeout not classified: %v", results[0].Err)
	}
	if results[0].Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", results[0].Timeouts)
	}
	if results[1].Err != nil {
		t.Fatalf("pool wedged after timeout: %v", results[1].Err)
	}
}

// TestRetryEventuallySucceeds: a flaky cell failing twice with Retries: 2
// ends up succeeding, with the attempt count recorded.
func TestRetryEventuallySucceeds(t *testing.T) {
	var calls atomic.Int64
	p := Pool{Jobs: 1, Retries: 2}
	results := p.Run(context.Background(), []Cell{{
		ID: "flaky",
		Do: func(context.Context) error {
			if calls.Add(1) < 3 {
				return fmt.Errorf("transient %d", calls.Load())
			}
			return nil
		},
	}})
	if results[0].Err != nil {
		t.Fatalf("retry should have rescued the cell: %v", results[0].Err)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", results[0].Attempts)
	}
}

// TestRetryExhaustion: the final attempt's error survives, and panicking
// attempts are each counted.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	p := Pool{Jobs: 1, Retries: 2}
	results := p.Run(context.Background(), []Cell{{
		ID: "doomed",
		Do: func(context.Context) error { panic(fmt.Sprintf("always %d", calls.Add(1))) },
	}})
	r := results[0]
	if !errors.Is(r.Err, ErrCellPanic) || !strings.Contains(r.Err.Error(), "always 3") {
		t.Fatalf("final attempt error not preserved: %v", r.Err)
	}
	if r.Attempts != 3 || r.Panics != 3 {
		t.Fatalf("attempts=%d panics=%d, want 3/3", r.Attempts, r.Panics)
	}
}

// TestCancellationNotRetried: a cell failing with context.Canceled must
// not burn retry attempts.
func TestCancellationNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Pool{Jobs: 1, Retries: 5}
	results := p.Run(ctx, []Cell{{
		ID: "cancelled",
		Do: func(context.Context) error {
			cancel()
			return context.Canceled
		},
	}})
	if results[0].Attempts != 1 {
		t.Fatalf("cancellation retried: %d attempts", results[0].Attempts)
	}
}

// TestManifestRobustnessCounters: panics, retries, timeouts and failed
// cells all land in the manifest, per cell and in the run totals.
func TestManifestRobustnessCounters(t *testing.T) {
	m := NewManifest("robustness", 2)
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	p := Pool{Jobs: 2, Retries: 1, CellTimeout: 20 * time.Millisecond, Manifest: m}
	p.Run(context.Background(), []Cell{
		{ID: "ok", Do: func(context.Context) error { return nil }},
		{ID: "panics", Do: func(context.Context) error { panic("nope") }},
		{ID: "flaky", Do: func(context.Context) error {
			if calls.Add(1) == 1 {
				return errors.New("transient")
			}
			return nil
		}},
		{ID: "stuck", Do: func(context.Context) error { <-release; return nil }},
	})
	m.Finish()
	if m.FailedCells != 2 {
		t.Fatalf("FailedCells = %d, want 2 (panics + stuck)", m.FailedCells)
	}
	if m.Panics != 2 {
		t.Fatalf("Panics = %d, want 2 (one per attempt)", m.Panics)
	}
	if m.Timeouts != 2 {
		t.Fatalf("Timeouts = %d, want 2 (one per attempt)", m.Timeouts)
	}
	// panics: 1 retry; flaky: 1 retry; stuck: 1 retry.
	if m.Retries != 3 {
		t.Fatalf("Retries = %d, want 3", m.Retries)
	}
	byID := map[string]CellRecord{}
	for _, c := range m.Cells {
		byID[c.ID] = c
	}
	if c := byID["panics"]; c.Panics != 2 || c.Attempts != 2 || c.Stack == "" || c.Error == "" {
		t.Fatalf("panics cell record: %+v", c)
	}
	if c := byID["flaky"]; c.Attempts != 2 || c.Error != "" {
		t.Fatalf("flaky cell record: %+v", c)
	}
	if c := byID["ok"]; c.Error != "" || c.Panics != 0 {
		t.Fatalf("ok cell record: %+v", c)
	}
}

// TestCachePanicReleasesWaiters: when a single-flight fn panics, waiting
// goroutines must receive an error instead of deadlocking, and the panic
// must still propagate to the flight owner.
func TestCachePanicReleasesWaiters(t *testing.T) {
	cache := NewCache()
	entered := make(chan struct{})
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	panicked := make(chan any, 1)
	go func() {
		defer wg.Done()
		defer func() { panicked <- recover() }()
		cache.Do("k", func() (any, error) {
			close(entered)
			<-proceed
			panic("in-flight")
		})
	}()
	<-entered
	waitErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := cache.Do("k", func() (any, error) { return nil, nil })
		waitErr <- err
	}()
	// Give the waiter a moment to join the flight, then spring the panic.
	time.Sleep(10 * time.Millisecond)
	close(proceed)
	select {
	case err := <-waitErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked on panicked flight")
	}
	if p := <-panicked; p == nil {
		t.Fatal("panic swallowed instead of propagated to flight owner")
	}
	wg.Wait()
	// The flight's error is cached like any other failure.
	if _, err := cache.Do("k", func() (any, error) { return nil, nil }); err == nil {
		t.Fatal("panicked flight not cached as error")
	}
}

// TestAttemptHistory: a flaky cell's per-attempt trail records every
// outcome class in order with its error and a sane wall time, and the
// manifest preserves the trail so a post-mortem can name the failing
// attempt. An all-ok single-attempt cell records no history in the
// manifest (the common case stays lean).
func TestAttemptHistory(t *testing.T) {
	var tries atomic.Int64
	cells := []Cell{
		{ID: "flaky", Do: func(context.Context) error {
			switch tries.Add(1) {
			case 1:
				return fmt.Errorf("transient glitch")
			case 2:
				panic("attempt-two panic")
			}
			return nil
		}},
		{ID: "clean", Do: func(context.Context) error { return nil }},
	}
	m := NewManifest("test", 1)
	p := Pool{Jobs: 1, Retries: 3, Manifest: m}
	results := p.Run(context.Background(), cells)

	r := results[0]
	if r.Err != nil {
		t.Fatalf("flaky cell should succeed on attempt 3: %v", r.Err)
	}
	if len(r.History) != 3 {
		t.Fatalf("history length = %d, want 3: %+v", len(r.History), r.History)
	}
	wantOutcomes := []string{"error", "panic", "ok"}
	for i, a := range r.History {
		if a.Outcome != wantOutcomes[i] {
			t.Errorf("attempt %d outcome = %q, want %q", i, a.Outcome, wantOutcomes[i])
		}
		if a.Seconds < 0 {
			t.Errorf("attempt %d has negative wall time", i)
		}
	}
	if !strings.Contains(r.History[0].Error, "transient glitch") {
		t.Errorf("attempt 0 error = %q", r.History[0].Error)
	}
	if !strings.Contains(r.History[1].Error, "attempt-two panic") {
		t.Errorf("attempt 1 error = %q", r.History[1].Error)
	}
	if r.History[2].Error != "" {
		t.Errorf("successful attempt carries error %q", r.History[2].Error)
	}

	// Manifest: the retried cell keeps its trail, the clean cell stays lean.
	var flakyRec, cleanRec *CellRecord
	for i := range m.Cells {
		switch m.Cells[i].ID {
		case "flaky":
			flakyRec = &m.Cells[i]
		case "clean":
			cleanRec = &m.Cells[i]
		}
	}
	if flakyRec == nil || cleanRec == nil {
		t.Fatal("manifest missing cells")
	}
	if len(flakyRec.History) != 3 {
		t.Fatalf("manifest history length = %d, want 3", len(flakyRec.History))
	}
	if len(cleanRec.History) != 0 {
		t.Fatalf("clean cell recorded history: %+v", cleanRec.History)
	}
}

// TestAttemptHistoryTimeout: a timed-out attempt is classified "timeout"
// in the trail.
func TestAttemptHistoryTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var tries atomic.Int64
	p := Pool{Jobs: 1, CellTimeout: 20 * time.Millisecond, Retries: 1}
	results := p.Run(context.Background(), []Cell{
		{ID: "slow-then-ok", Do: func(context.Context) error {
			if tries.Add(1) == 1 {
				<-release
			}
			return nil
		}},
	})
	r := results[0]
	if r.Err != nil {
		t.Fatalf("retry should have succeeded: %v", r.Err)
	}
	if len(r.History) != 2 || r.History[0].Outcome != "timeout" || r.History[1].Outcome != "ok" {
		t.Fatalf("history = %+v, want [timeout ok]", r.History)
	}
}
