package runner

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"time"

	"ccr/internal/buildinfo"
	"ccr/internal/store"
	"ccr/internal/telemetry"
)

// CellRecord is one cell's entry in a run manifest.
type CellRecord struct {
	ID      string  `json:"id"`
	Worker  int     `json:"worker"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
	// Attempts is recorded only when the cell was retried; Panics and
	// Timeouts count failed attempt outcomes, and Stack preserves the
	// last recovered panic's goroutine stack.
	Attempts int    `json:"attempts,omitempty"`
	Panics   int    `json:"panics,omitempty"`
	Timeouts int    `json:"timeouts,omitempty"`
	Stack    string `json:"stack,omitempty"`
	// History is the per-attempt outcome sequence (outcome, error, wall
	// time), recorded whenever the cell needed more than one attempt or
	// ended in failure — the post-mortem trail that names which attempt
	// of which cell timed out, panicked or errored, and when.
	History []Attempt `json:"history,omitempty"`
}

// WorkerRecord aggregates one worker's share of a run.
type WorkerRecord struct {
	Worker      int     `json:"worker"`
	Cells       int     `json:"cells"`
	BusySeconds float64 `json:"busy_seconds"`
	// Utilization is busy time over total wall time, set by Finish.
	Utilization float64 `json:"utilization"`
}

// Manifest is the structured record of one experiment run: the invoked
// configuration, every executed cell with its wall time and worker, the
// hit/miss counters of the shared artifact caches, and per-worker
// utilization. It is safe for concurrent recording and serializes to JSON.
type Manifest struct {
	mu sync.Mutex

	Command     string                `json:"command"`
	Version     buildinfo.Info        `json:"version"`
	Start       time.Time             `json:"start"`
	WallSeconds float64               `json:"wall_seconds"`
	Jobs        int                   `json:"jobs"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	Cells       []CellRecord          `json:"cells"`
	Workers     []WorkerRecord        `json:"workers,omitempty"`
	Caches      map[string]CacheStats `json:"caches,omitempty"`
	// Telemetry holds per-cell CRB telemetry summaries, keyed by cell (or
	// artifact) ID, when the run was executed with telemetry enabled.
	Telemetry map[string]telemetry.Summary `json:"telemetry,omitempty"`
	// Store holds the artifact store's outcome counters when the run was
	// executed over a persistent store (hits here are cells or artifacts
	// whose results were loaded instead of recomputed).
	Store  *store.Stats `json:"store,omitempty"`
	Errors []string     `json:"errors,omitempty"`
	// Failure-isolation totals across every recorded cell.
	FailedCells int `json:"failed_cells,omitempty"`
	Panics      int `json:"panics,omitempty"`
	Retries     int `json:"retries,omitempty"`
	Timeouts    int `json:"timeouts,omitempty"`
}

// NewManifest starts a manifest for the given command line and worker
// count, stamping the start time.
func NewManifest(command string, jobs int) *Manifest {
	return &Manifest{
		Command:    command,
		Version:    buildinfo.Get(),
		Start:      time.Now(),
		Jobs:       jobs,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

func (m *Manifest) record(jobs int, results []CellResult, busy []time.Duration, ran []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range results {
		rec := CellRecord{ID: r.ID, Worker: r.Worker, Seconds: r.Wall.Seconds(),
			Panics: r.Panics, Timeouts: r.Timeouts, Stack: r.Stack}
		if r.Attempts > 1 || r.Err != nil {
			rec.History = append(rec.History, r.History...)
		}
		if r.Attempts > 1 {
			rec.Attempts = r.Attempts
			m.Retries += r.Attempts - 1
		}
		m.Panics += r.Panics
		m.Timeouts += r.Timeouts
		if r.Err != nil {
			rec.Error = r.Err.Error()
			m.Errors = append(m.Errors, r.Err.Error())
			m.FailedCells++
		}
		m.Cells = append(m.Cells, rec)
	}
	for len(m.Workers) < jobs {
		m.Workers = append(m.Workers, WorkerRecord{Worker: len(m.Workers)})
	}
	for w := 0; w < jobs; w++ {
		m.Workers[w].Cells += ran[w]
		m.Workers[w].BusySeconds += busy[w].Seconds()
	}
}

// SetTelemetry embeds one cell's CRB telemetry summary under its ID.
func (m *Manifest) SetTelemetry(id string, s telemetry.Summary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Telemetry == nil {
		m.Telemetry = map[string]telemetry.Summary{}
	}
	m.Telemetry[id] = s
}

// SetStore records the artifact store's outcome counters.
func (m *Manifest) SetStore(st store.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Store = &st
}

// SetCache records the counters of one named artifact cache.
func (m *Manifest) SetCache(name string, st CacheStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.Caches == nil {
		m.Caches = map[string]CacheStats{}
	}
	m.Caches[name] = st
}

// Finish stamps the total wall time and derives worker utilization.
func (m *Manifest) Finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.WallSeconds = time.Since(m.Start).Seconds()
	for i := range m.Workers {
		if m.WallSeconds > 0 {
			m.Workers[i].Utilization = m.Workers[i].BusySeconds / m.WallSeconds
		}
	}
}

// JSON renders the manifest as indented JSON.
func (m *Manifest) JSON() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return json.MarshalIndent(m, "", "  ")
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
