// Package runner is the parallel experiment-execution engine behind the
// figure drivers: a worker pool that fans the independent simulation cells
// of a sweep (benchmark × dataset × CRB configuration) out across a fixed
// number of workers, a thread-safe single-flight cache for the pipeline
// artifacts those cells share (compilations, baseline simulations, limit
// studies), and structured run manifests recording per-cell wall time,
// cache effectiveness and worker utilization.
//
// Results are always returned in input order, so a parallel sweep renders
// byte-identically to a serial one; a failing cell reports its error
// without aborting the rest of the sweep.
package runner

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCellPanic wraps a panic recovered inside a cell; ErrCellTimeout marks
// a cell attempt that exceeded Pool.CellTimeout. Both are classifiable
// with errors.Is on the cell's final error.
var (
	ErrCellPanic   = errors.New("cell panicked")
	ErrCellTimeout = errors.New("cell timed out")
)

// Cell is one independently executable unit of a sweep: typically a single
// (benchmark, dataset, CRB configuration) simulation. Do must be safe to
// call concurrently with every other cell of the same run; cross-cell
// sharing belongs in a Cache.
type Cell struct {
	ID string
	Do func(ctx context.Context) error
}

// Attempt records one attempt of one cell: its outcome class, the error
// that ended it (empty on success) and its wall time. The sequence of a
// cell's attempts is its retry post-mortem: which attempt timed out,
// which panicked, and how long each burned.
type Attempt struct {
	// Outcome is "ok", "error", "panic", "timeout" or "canceled".
	Outcome string  `json:"outcome"`
	Error   string  `json:"error,omitempty"`
	Seconds float64 `json:"seconds"`
}

// CellResult records one cell's outcome.
type CellResult struct {
	ID     string
	Index  int // position in the input slice
	Worker int
	Wall   time.Duration // total across every attempt
	Err    error         // final attempt's error (nil on success)
	// Attempts is 1 plus the retries consumed; Panics and Timeouts count
	// the attempts that ended in a recovered panic or a timeout.
	Attempts int
	Panics   int
	Timeouts int
	// History holds one record per attempt, in order.
	History []Attempt
	// Stack is the captured goroutine stack of the last recovered panic.
	Stack string
}

// Pool fans cells out across a fixed number of workers.
type Pool struct {
	// Jobs is the worker count; <= 0 means one worker per GOMAXPROCS.
	Jobs int
	// CellTimeout bounds each cell *attempt*'s wall time; 0 disables the
	// bound. Cells are CPU-bound and need not poll their context, so a
	// timed-out attempt's goroutine is abandoned rather than preempted —
	// it keeps running to completion in the background while the pool
	// moves on (its panics, if any, are still recovered).
	CellTimeout time.Duration
	// Retries re-runs a failed cell (error, panic or timeout) up to this
	// many additional attempts. Cancellation is never retried.
	Retries int
	// Manifest, when non-nil, accumulates cell records and worker busy
	// time from every Run.
	Manifest *Manifest
	// Heartbeat, when positive, emits a progress snapshot at this interval
	// while a Run is in flight (cells done/total, failures, elapsed, ETA,
	// worker utilization) so long sweeps are not silent.
	Heartbeat time.Duration
	// Sink receives the heartbeat snapshots; when nil, they go to
	// slog.Default at Info level (SlogSink). The daemon's streaming
	// progress channel and the CLI heartbeat are both just sinks.
	Sink ProgressSink
}

// ProgressSink consumes the heartbeat snapshots of an in-flight Run. A
// sink must be safe for use from the pool's heartbeat goroutine; one Run
// calls it from a single goroutine at a time.
type ProgressSink interface {
	Progress(Progress)
}

// ProgressFunc adapts a plain function to a ProgressSink.
type ProgressFunc func(Progress)

// Progress implements ProgressSink.
func (f ProgressFunc) Progress(p Progress) { f(p) }

// SlogSink logs each snapshot as a structured line on Logger (or
// slog.Default when nil) — the default heartbeat destination of every CLI.
type SlogSink struct {
	Logger *slog.Logger
}

// Progress implements ProgressSink.
func (s SlogSink) Progress(p Progress) {
	l := s.Logger
	if l == nil {
		l = slog.Default()
	}
	l.Info("runner heartbeat", "progress", p)
}

// MultiSink fans each snapshot out to every sink in order.
type MultiSink []ProgressSink

// Progress implements ProgressSink.
func (m MultiSink) Progress(p Progress) {
	for _, s := range m {
		s.Progress(p)
	}
}

// Progress is one heartbeat snapshot of an in-flight Run.
type Progress struct {
	Done, Total, Failed int
	Elapsed             time.Duration
	// ETA estimates the remaining wall time from mean cell duration so
	// far; zero until the first cell completes.
	ETA time.Duration
	// Utilization is the mean fraction of worker time spent inside cells.
	Utilization float64
}

// LogValue renders the snapshot as structured attributes.
func (p Progress) LogValue() slog.Value {
	return slog.GroupValue(
		slog.Int("done", p.Done),
		slog.Int("total", p.Total),
		slog.Int("failed", p.Failed),
		slog.Duration("elapsed", p.Elapsed),
		slog.Duration("eta", p.ETA),
		slog.Float64("utilization", p.Utilization),
	)
}

func (p *Pool) jobs() int {
	if p == nil || p.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Jobs
}

// Run executes every cell and returns the results in input order,
// independent of completion order. A failing, panicking or timed-out cell
// only marks its own result; the remaining cells still run. Cancelling
// ctx stops workers from starting new cells — cells not yet started
// report ctx.Err().
func (p *Pool) Run(ctx context.Context, cells []Cell) []CellResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]CellResult, len(cells))
	jobs := p.jobs()
	if jobs > len(cells) {
		jobs = len(cells)
	}
	if jobs < 1 {
		jobs = 1
	}
	busy := make([]time.Duration, jobs)
	ran := make([]int, jobs)
	var done, failed, busyNS atomic.Int64
	if p != nil && p.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go p.beat(stop, time.Now(), len(cells), jobs, &done, &failed, &busyNS)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				r := &results[i]
				r.ID, r.Index, r.Worker = cells[i].ID, i, w
				if err := ctx.Err(); err != nil {
					r.Err = fmt.Errorf("runner: cell %s: %w", cells[i].ID, err)
					done.Add(1)
					failed.Add(1)
					continue
				}
				start := time.Now()
				p.execute(ctx, cells[i], r)
				r.Wall = time.Since(start)
				if r.Err != nil {
					r.Err = fmt.Errorf("runner: cell %s: %w", cells[i].ID, r.Err)
					failed.Add(1)
				}
				busy[w] += r.Wall
				ran[w]++
				done.Add(1)
				busyNS.Add(int64(r.Wall))
			}
		}(w)
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if p != nil && p.Manifest != nil {
		p.Manifest.record(jobs, results, busy, ran)
	}
	return results
}

// beat emits heartbeat snapshots until stop closes, then one final
// snapshot so short runs still record their completion line.
func (p *Pool) beat(stop <-chan struct{}, start time.Time, total, jobs int,
	done, failed, busyNS *atomic.Int64) {
	t := time.NewTicker(p.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.emitProgress(p.snapshot(start, total, jobs, done, failed, busyNS))
		}
	}
}

func (p *Pool) snapshot(start time.Time, total, jobs int,
	done, failed, busyNS *atomic.Int64) Progress {
	return computeProgress(int(done.Load()), total, int(failed.Load()),
		time.Since(start), time.Duration(busyNS.Load()), jobs)
}

// computeProgress derives one heartbeat snapshot from the raw counters —
// the pure core of snapshot, separated so the degenerate first-tick cases
// are testable without a live pool. Before the first cell completes, or
// before the clock has visibly advanced, there is no completion rate to
// extrapolate: a naive elapsed/done quotient would divide by zero (or
// promise a 0s ETA for an arbitrarily long run), so both ETA and
// utilization stay zero — "unknown" — until the inputs can support them.
func computeProgress(done, total, failed int, elapsed, busy time.Duration, jobs int) Progress {
	pr := Progress{Done: done, Total: total, Failed: failed, Elapsed: elapsed}
	if done > 0 && done < total && elapsed > 0 {
		// Mean completed-cell wall time × remaining cells: elapsed time
		// already amortizes the worker parallelism, so no jobs division.
		pr.ETA = time.Duration(float64(elapsed) / float64(done) * float64(total-done))
	}
	if elapsed > 0 && jobs > 0 {
		pr.Utilization = float64(busy) / (float64(elapsed) * float64(jobs))
	}
	return pr
}

func (p *Pool) emitProgress(pr Progress) {
	if p.Sink != nil {
		p.Sink.Progress(pr)
		return
	}
	SlogSink{}.Progress(pr)
}

// execute runs one cell with panic isolation, the per-attempt timeout and
// the bounded retry policy, filling r's outcome fields.
func (p *Pool) execute(ctx context.Context, c Cell, r *CellResult) {
	retries := 0
	var timeout time.Duration
	if p != nil {
		retries, timeout = p.Retries, p.CellTimeout
	}
	for attempt := 0; ; attempt++ {
		r.Attempts = attempt + 1
		began := time.Now()
		err, stack, timedOut := runAttempt(ctx, c, timeout)
		rec := Attempt{Outcome: "ok", Seconds: time.Since(began).Seconds()}
		if stack != "" {
			r.Panics++
			r.Stack = stack
			rec.Outcome = "panic"
		}
		if timedOut {
			r.Timeouts++
			rec.Outcome = "timeout"
		}
		if err != nil {
			if rec.Outcome == "ok" {
				rec.Outcome = "error"
				if errors.Is(err, context.Canceled) {
					rec.Outcome = "canceled"
				}
			}
			rec.Error = err.Error()
		}
		r.History = append(r.History, rec)
		r.Err = err
		if err == nil || attempt >= retries || ctx.Err() != nil || errors.Is(err, context.Canceled) {
			return
		}
	}
}

// attemptOutcome carries one attempt's result across the timeout boundary.
type attemptOutcome struct {
	err   error
	stack string
}

// runAttempt executes the cell body once, converting panics into
// ErrCellPanic errors with a captured stack. With a timeout it runs the
// body in a helper goroutine and abandons it when the deadline passes.
func runAttempt(ctx context.Context, c Cell, timeout time.Duration) (err error, stack string, timedOut bool) {
	if timeout <= 0 {
		o := runRecovered(ctx, c)
		return o.err, o.stack, false
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	ch := make(chan attemptOutcome, 1)
	go func() { ch <- runRecovered(cctx, c) }()
	select {
	case o := <-ch:
		return o.err, o.stack, false
	case <-cctx.Done():
		if errors.Is(cctx.Err(), context.DeadlineExceeded) {
			return fmt.Errorf("%w after %v", ErrCellTimeout, timeout), "", true
		}
		return cctx.Err(), "", false
	}
}

func runRecovered(ctx context.Context, c Cell) (o attemptOutcome) {
	defer func() {
		if r := recover(); r != nil {
			o.stack = string(debug.Stack())
			o.err = fmt.Errorf("%w: %v", ErrCellPanic, r)
		}
	}()
	o.err = c.Do(ctx)
	return o
}

// Errs joins the cell errors in input order; nil when every cell succeeded.
func Errs(results []CellResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}
