// Package runner is the parallel experiment-execution engine behind the
// figure drivers: a worker pool that fans the independent simulation cells
// of a sweep (benchmark × dataset × CRB configuration) out across a fixed
// number of workers, a thread-safe single-flight cache for the pipeline
// artifacts those cells share (compilations, baseline simulations, limit
// studies), and structured run manifests recording per-cell wall time,
// cache effectiveness and worker utilization.
//
// Results are always returned in input order, so a parallel sweep renders
// byte-identically to a serial one; a failing cell reports its error
// without aborting the rest of the sweep.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Cell is one independently executable unit of a sweep: typically a single
// (benchmark, dataset, CRB configuration) simulation. Do must be safe to
// call concurrently with every other cell of the same run; cross-cell
// sharing belongs in a Cache.
type Cell struct {
	ID string
	Do func(ctx context.Context) error
}

// CellResult records one cell's outcome.
type CellResult struct {
	ID     string
	Index  int // position in the input slice
	Worker int
	Wall   time.Duration
	Err    error
}

// Pool fans cells out across a fixed number of workers.
type Pool struct {
	// Jobs is the worker count; <= 0 means one worker per GOMAXPROCS.
	Jobs int
	// Manifest, when non-nil, accumulates cell records and worker busy
	// time from every Run.
	Manifest *Manifest
}

func (p *Pool) jobs() int {
	if p == nil || p.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Jobs
}

// Run executes every cell and returns the results in input order,
// independent of completion order. A failing cell only marks its own
// result; the remaining cells still run. Cancelling ctx stops workers
// from starting new cells — cells not yet started report ctx.Err().
func (p *Pool) Run(ctx context.Context, cells []Cell) []CellResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]CellResult, len(cells))
	jobs := p.jobs()
	if jobs > len(cells) {
		jobs = len(cells)
	}
	if jobs < 1 {
		jobs = 1
	}
	busy := make([]time.Duration, jobs)
	ran := make([]int, jobs)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				r := &results[i]
				r.ID, r.Index, r.Worker = cells[i].ID, i, w
				if err := ctx.Err(); err != nil {
					r.Err = fmt.Errorf("runner: cell %s: %w", cells[i].ID, err)
					continue
				}
				start := time.Now()
				err := cells[i].Do(ctx)
				r.Wall = time.Since(start)
				if err != nil {
					r.Err = fmt.Errorf("runner: cell %s: %w", cells[i].ID, err)
				}
				busy[w] += r.Wall
				ran[w]++
			}
		}(w)
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if p != nil && p.Manifest != nil {
		p.Manifest.record(jobs, results, busy, ran)
	}
	return results
}

// Errs joins the cell errors in input order; nil when every cell succeeded.
func Errs(results []CellResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}
