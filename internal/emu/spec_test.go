package emu

// Tests for the third execution tier: spec.Fn dispatch from the batch
// loop, digest binding/unbinding across Link and registry changes, and
// the limit/fault/stats parity contract a region body must keep.
//
// The registered test region is a hand-written closure implementing the
// sum-loop's two member runs exactly as a generated body would (per-run
// budget pre-charge, cnt[head]++, taken counting, fault exit with
// registers written back) — it pins the engine side of the contract
// independently of cmd/ccrgen's code generator, which is exercised by the
// committed workload specializations in the full sweeps.

import (
	"testing"

	"ccr/internal/ir"
	"ccr/internal/spec"
)

// sumLoopRegion locates the sum loop's two runs (the Bge header and the
// body ending in Jmp), registers a closure specialization for them, and
// returns the region name. Callers own unregistration (t.Cleanup).
func sumLoopRegion(t *testing.T, p *ir.Program) string {
	t.Helper()
	dec := p.Decoded()
	var df *ir.DecodedFunc
	for _, d := range dec.Funcs {
		if d.Fn.Name == "main" {
			df = d
		}
	}
	if df == nil || df.RunKeys == nil {
		t.Fatal("sum loop main not decoded for batch")
	}
	var hB int32 = -1
	for pc := range df.Code {
		if df.Code[pc].Op == ir.Bge {
			hB = int32(pc)
		}
	}
	if hB < 0 {
		t.Fatal("no Bge header in sum loop")
	}
	hJ := hB + 1 // body head
	endJ := df.RunEnd[hJ]
	if df.Code[endJ].Op != ir.Jmp {
		t.Fatalf("body run ends in %v, want Jmp", df.Code[endJ].Op)
	}
	kJ := int64(endJ-hJ) + 1
	bge := &df.Code[hB]

	fn := func(rp *[ir.RegFileCap]int64, mem []int64, cnt []int64, rem int64, pc int32) (int32, int64, int64, int32) {
		if len(cnt) < len(df.Code) {
			return pc, rem, 0, -2
		}
		var taken int64
		for {
			switch pc {
			case hB: // run [hB,hB]: the loop header branch
				if rem < 1 {
					return hB, rem, taken, -1
				}
				rem--
				cnt[hB]++
				if rp[bge.Src1] >= rp[bge.Src2] {
					taken++
					return bge.Target, rem, taken, -1
				}
				pc = hJ
			case hJ: // run [hJ,endJ]: Add, Ld, Add, AddI, Jmp
				if rem < kJ {
					return hJ, rem, taken, -1
				}
				rem -= kJ
				cnt[hJ]++
				for j := hJ; j < endJ; j++ {
					in := &df.Code[j]
					switch in.Op {
					case ir.Add:
						v2 := in.Imm
						if in.Src2 != ir.NoReg {
							v2 = rp[in.Src2]
						}
						rp[in.Dest] = rp[in.Src1] + v2
					case ir.Ld:
						a := rp[in.Src1] + in.Imm
						if uint64(a) >= uint64(len(mem)) {
							return pc, rem, taken, j
						}
						if in.ObjHi >= 0 && (a < in.ObjLo || a >= in.ObjHi) {
							return pc, rem, taken, j
						}
						rp[in.Dest] = mem[a]
					default:
						t.Fatalf("unexpected body op %v", in.Op)
					}
				}
				pc = df.Code[endJ].Target // the back edge (Jmp: no taken count)
			default:
				return pc, rem, taken, -2
			}
		}
	}
	name := "test/sumloop"
	spec.Register(spec.Region{
		Name: name,
		Entries: []spec.HeadKey{
			{PC: hB, Key: df.RunKeys[hB]},
			{PC: hJ, Key: df.RunKeys[hJ]},
		},
		Fn: fn,
	})
	return name
}

// TestSpecTierDifferential pins result and statistics identity across the
// three execution configurations: spec tier bound, spec disabled (NoSpec,
// generic fused batch tier), and the reference interpreter.
func TestSpecTierDifferential(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	p := buildSumLoop(t, vals)
	name := sumLoopRegion(t, p)
	t.Cleanup(func() { spec.Unregister(name) })

	ms := New(p)
	if got := ms.SpecsBound(); got != 2 {
		t.Fatalf("SpecsBound = %d, want 2", got)
	}
	mn := New(p)
	mn.NoSpec = true
	ref := interpOf(p)

	sres, serr := ms.Run(int64(len(vals)))
	nres, nerr := mn.Run(int64(len(vals)))
	rres, rerr := ref.Run(int64(len(vals)))
	if serr != nil || nerr != nil || rerr != nil {
		t.Fatalf("errs: spec %v, nospec %v, interp %v", serr, nerr, rerr)
	}
	if sres != rres || nres != rres {
		t.Fatalf("results: spec %d, nospec %d, interp %d", sres, nres, rres)
	}
	compareStats(t, ms, ref)
	compareStats(t, mn, ref)
	if mn.SpecsBound() != 0 {
		t.Fatal("NoSpec machine bound specializations")
	}
}

// TestSpecTierLimitParity sweeps the instruction limit across every cut
// position with the specialization bound: the spec body's per-run budget
// bailout must land the careful tier on exactly the interpreter's ErrLimit
// point, with identical partial statistics.
func TestSpecTierLimitParity(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	p := buildSumLoop(t, vals)
	name := sumLoopRegion(t, p)
	t.Cleanup(func() { spec.Unregister(name) })

	ref0 := interpOf(p)
	if _, err := ref0.Run(int64(len(vals))); err != nil {
		t.Fatal(err)
	}
	full := ref0.Stats.DynInstrs
	for limit := int64(1); limit <= full+1; limit++ {
		fast, ref, fres, rres, ferr, rerr := runBoth(t, p, limit, int64(len(vals)))
		if (ferr == nil) != (rerr == nil) || (ferr != nil && ferr.Error() != rerr.Error()) {
			t.Fatalf("limit %d: errs engine %v, interp %v", limit, ferr, rerr)
		}
		if fres != rres {
			t.Fatalf("limit %d: result engine %d, interp %d", limit, fres, rres)
		}
		compareStats(t, fast, ref)
	}
}

// TestSpecTierFaultParity drives the spec region into a load fault (index
// past the hinted object) and checks the engine reconstructs the
// interpreter's exact error and partial statistics from the spec's fault
// exit.
func TestSpecTierFaultParity(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	p := buildSumLoop(t, vals)
	name := sumLoopRegion(t, p)
	t.Cleanup(func() { spec.Unregister(name) })

	n := int64(len(vals)) + 3 // walks off the end of A
	fast, ref, _, _, ferr, rerr := runBoth(t, p, 0, n)
	if ferr == nil || rerr == nil {
		t.Fatalf("expected faults, got engine %v, interp %v", ferr, rerr)
	}
	if ferr.Error() != rerr.Error() {
		t.Fatalf("fault text:\nengine: %v\ninterp: %v", ferr, rerr)
	}
	compareStats(t, fast, ref)
}

// TestSpecBindingInvalidation is the relink-invalidation contract: a
// machine built after the program changed (Link) must not bind stale
// specializations, and registry changes take effect for new machines.
func TestSpecBindingInvalidation(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	p := buildSumLoop(t, vals)
	name := sumLoopRegion(t, p)
	t.Cleanup(func() { spec.Unregister(name) })

	if got := New(p).SpecsBound(); got != 2 {
		t.Fatalf("initial SpecsBound = %d, want 2", got)
	}

	// Mutate one member instruction and relink: run digests change, so the
	// region must silently unbind rather than execute stale code.
	var f *ir.Func
	for _, fn := range p.Funcs {
		if fn.Name == "main" {
			f = fn
		}
	}
	var mut *ir.Instr
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Add && in.Src2 == ir.NoReg && in.Imm == 1 {
				mut = in // the AddI i, i, 1 induction step
			}
		}
	}
	if mut == nil {
		t.Fatal("induction AddI not found")
	}
	mut.Imm = 2
	p.Link()
	if got := New(p).SpecsBound(); got != 0 {
		t.Fatalf("SpecsBound after mutating relink = %d, want 0", got)
	}

	// Restore and relink: digests match again, new machines rebind.
	mut.Imm = 1
	p.Link()
	m := New(p)
	if got := m.SpecsBound(); got != 2 {
		t.Fatalf("SpecsBound after restoring relink = %d, want 2", got)
	}
	ref := interpOf(p)
	mres, merr := m.Run(int64(len(vals)))
	rres, rerr := ref.Run(int64(len(vals)))
	if merr != nil || rerr != nil || mres != rres {
		t.Fatalf("post-relink run: spec %d (%v), interp %d (%v)", mres, merr, rres, rerr)
	}

	// Unregistration unbinds for machines created afterwards.
	if !spec.Unregister(name) {
		t.Fatal("Unregister reported region missing")
	}
	if got := New(p).SpecsBound(); got != 0 {
		t.Fatalf("SpecsBound after Unregister = %d, want 0", got)
	}
}
