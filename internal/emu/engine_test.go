package emu

import (
	"errors"
	"testing"

	"ccr/internal/ir"
)

// interpOf returns a machine forced onto the legacy block-structured
// interpreter, the reference the predecoded engine must match exactly.
func interpOf(p *ir.Program) *Machine {
	m := New(p)
	m.Interp = true
	return m
}

// TestRunAllocs pins the allocation-free guarantee of the predecoded
// engine: with no tracer and no CRB, steady-state Reset+Run performs zero
// heap allocations (frames, register files, and the statistics flush all
// come from machine-owned pools).
func TestRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented runtime allocates outside the engine's control")
	}
	p := buildSumLoop(t, []int64{3, 1, 4, 1, 5, 9, 2, 6})
	m := New(p)
	if _, err := m.Run(8); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.Reset()
		if _, err := m.Run(8); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset+Run allocates %v times per run, want 0", allocs)
	}
}

// runBoth executes the program on the predecoded engine and the reference
// interpreter with the same limit and returns both machines for
// comparison.
func runBoth(t *testing.T, p *ir.Program, limit int64, args ...int64) (fast, ref *Machine, fres, rres int64, ferr, rerr error) {
	t.Helper()
	fast, ref = New(p), interpOf(p)
	fast.Limit, ref.Limit = limit, limit
	fres, ferr = fast.Run(args...)
	rres, rerr = ref.Run(args...)
	return
}

// compareStats asserts the statistics blocks agree field by field (the
// digest-level equivalence the experiments suite checks end to end).
func compareStats(t *testing.T, fast, ref *Machine) {
	t.Helper()
	f, r := &fast.Stats, &ref.Stats
	if f.DynInstrs != r.DynInstrs {
		t.Errorf("DynInstrs: engine %d, interp %d", f.DynInstrs, r.DynInstrs)
	}
	if f.Branches != r.Branches || f.TakenBranches != r.TakenBranches {
		t.Errorf("branches: engine %d/%d, interp %d/%d",
			f.Branches, f.TakenBranches, r.Branches, r.TakenBranches)
	}
	if f.ByOp != r.ByOp {
		t.Errorf("ByOp diverged:\nengine %v\ninterp %v", f.ByOp, r.ByOp)
	}
}

// TestEngineMatchesInterp compares result and statistics on the ordinary
// loop workload (the batch tier executes everything here).
func TestEngineMatchesInterp(t *testing.T) {
	p := buildSumLoop(t, []int64{3, 1, 4, 1, 5, 9, 2, 6})
	fast, ref, fres, rres, ferr, rerr := runBoth(t, p, 0, 8)
	if ferr != nil || rerr != nil {
		t.Fatalf("errs: engine %v, interp %v", ferr, rerr)
	}
	if fres != rres {
		t.Fatalf("result: engine %d, interp %d", fres, rres)
	}
	compareStats(t, fast, ref)
}

// TestEngineLimitParity sweeps the instruction limit across every value up
// to the full run length: at each point the engine and the interpreter
// must agree on (result, error, DynInstrs). This walks the batch loop's
// budget endgame — the handoff to the careful tier when a straight-line
// run no longer fits — across every possible cut position, including cuts
// at calls, returns, and branch boundaries.
func TestEngineLimitParity(t *testing.T) {
	p := buildCallLoop(t)
	// Full run length first.
	ref := interpOf(p)
	if _, err := ref.Run(6); err != nil {
		t.Fatal(err)
	}
	full := ref.Stats.DynInstrs
	for limit := int64(1); limit <= full+1; limit++ {
		fast, ref, fres, rres, ferr, rerr := runBoth(t, p, limit, 6)
		if (ferr == nil) != (rerr == nil) || (ferr != nil && ferr.Error() != rerr.Error()) {
			t.Fatalf("limit %d: errs engine %v, interp %v", limit, ferr, rerr)
		}
		if fres != rres {
			t.Fatalf("limit %d: result engine %d, interp %d", limit, fres, rres)
		}
		if fast.Stats.DynInstrs != ref.Stats.DynInstrs {
			t.Fatalf("limit %d: DynInstrs engine %d, interp %d",
				limit, fast.Stats.DynInstrs, ref.Stats.DynInstrs)
		}
		compareStats(t, fast, ref)
	}
}

// buildCallLoop builds main(n) { s=0; for i=0..n-1 { s += double(i) }; ret s }
// with a callee, so the limit sweep crosses call/return frame switches.
func buildCallLoop(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("callloop")
	g := pb.Func("double", 1)
	gb := g.NewBlock()
	gr := g.NewReg()
	gb.Add(gr, g.Param(0), g.Param(0))
	gb.Ret(gr)

	f := pb.Func("main", 1)
	n := f.Param(0)
	entry := f.NewBlock()
	loop := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	s, i, v := f.NewReg(), f.NewReg(), f.NewReg()
	entry.MovI(s, 0)
	entry.MovI(i, 0)
	loop.Bge(i, n, exit.ID())
	body.Call(v, g.ID(), i)
	body.Add(s, s, v)
	body.AddI(i, i, 1)
	body.Jmp(loop.ID())
	exit.Ret(s)
	pb.SetMain(f.ID())
	p := pb.Build()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

// TestEngineFellOffEndParity pins fault parity on the sentinel path: a
// function whose final block lacks a terminator falls off the end with the
// same fault coordinates and the same instruction count on both engines,
// with the sentinel slot never counted as an executed instruction.
func TestEngineFellOffEndParity(t *testing.T) {
	pb := ir.NewProgramBuilder("felloff")
	f := pb.Func("main", 0)
	b := f.NewBlock()
	r := f.NewReg()
	b.MovI(r, 1)
	b.AddI(r, r, 2) // no terminator: falls off the end
	pb.SetMain(f.ID())
	p := pb.Build()

	fast, ref, _, _, ferr, rerr := runBoth(t, p, 0)
	if ferr == nil || rerr == nil {
		t.Fatalf("expected faults, got engine %v, interp %v", ferr, rerr)
	}
	var ff, rf *Fault
	if !errors.As(ferr, &ff) || !errors.As(rerr, &rf) {
		t.Fatalf("non-Fault errors: engine %v, interp %v", ferr, rerr)
	}
	if *ff != *rf {
		t.Fatalf("fault diverged: engine %+v, interp %+v", ff, rf)
	}
	compareStats(t, fast, ref)
	if fast.Stats.DynInstrs != 2 {
		t.Fatalf("DynInstrs = %d, want 2 (sentinel not counted)", fast.Stats.DynInstrs)
	}
}

// TestEngineLoadFaultParity pins fault parity mid-run: the batch tier
// pre-charges whole straight-line runs, so a load fault in the middle must
// refund the unexecuted tail to match the interpreter's exact instruction
// count (the faulting instruction itself is counted).
func TestEngineLoadFaultParity(t *testing.T) {
	pb := ir.NewProgramBuilder("ldfault")
	obj := pb.Object("buf", 4, nil)
	f := pb.Func("main", 0)
	b := f.NewBlock()
	a, v, w := f.NewReg(), f.NewReg(), f.NewReg()
	b.MovI(a, 1 << 40) // far out of range
	b.Ld(v, a, 0, ir.NoMem)
	b.Add(w, v, v) // pre-charged but never executed
	b.Ret(w)
	pb.SetMain(f.ID())
	_ = obj
	p := pb.Build()

	fast, ref, _, _, ferr, rerr := runBoth(t, p, 0)
	if ferr == nil || rerr == nil || ferr.Error() != rerr.Error() {
		t.Fatalf("fault parity: engine %v, interp %v", ferr, rerr)
	}
	compareStats(t, fast, ref)
	if fast.Stats.DynInstrs != 2 {
		t.Fatalf("DynInstrs = %d, want 2 (movi + faulting load)", fast.Stats.DynInstrs)
	}
}
