package emu

// This file is the predecoded execution engine: the default Machine.Run
// path. It executes the flat ir.DecodedProgram form — one dense PInstr
// array per function, branch targets as flat PCs, object bounds folded in
// — so the hot path is a switch over a contiguous stream with no
// block/index bookkeeping, no InstrAddr arithmetic (byte addresses are
// Base + 4*pc), and no heap traffic: frames and register files come from
// the machine's pools and the shared Event value in Machine.ev is reused
// for every emission. With no tracer attached and no CRB the loop
// performs zero allocations per run (pinned by TestRunAllocs).
//
// The engine is two-tier:
//
//   - The *batch* tier runs whenever execution is unobservable: no tracer,
//     no active memoization, and the function has an XCode (operand-shape
//     specialized batch form, see ir.batchDecode). Its loop carries no
//     per-instruction statistics at all: the instruction budget is charged
//     per straight-line *run* on entry (rem -= RunEnd[pc]-pc+1) and entry
//     counts per PC are accumulated in Machine.entryCnt, from which
//     flushOpCounts reconstructs the exact Stats.ByOp/Branches histogram
//     at every exit. Register files are indexed through a *[RegFileCap]
//     array view with uint8 register numbers, so the ALU cases compile to
//     bounds-check-free loads and stores.
//   - The *careful* tier is the original instruction-at-a-time loop with
//     full per-instruction accounting; it is authoritative for tracing,
//     memoization recording, the limit endgame (where a whole run no
//     longer fits in the budget), and functions whose shape the batch
//     decoder rejects. It executes one straight-line run at a time and
//     returns to the tier dispatch at every control transfer, so batch
//     execution resumes as soon as the observable condition (an armed
//     memo, typically) has passed.
//
// Both tiers must stay bit-identical to the reference interpreter in
// machine.go (runInterp) under the internal/oracle digest, trace stream
// included. The subtle equivalences they rely on:
//
//   - blocks are laid out contiguously in block order, so the flat
//     successor pc+1 is exactly the interpreter's iterative fall-through
//     (empty blocks contribute no code on either form), and the byte
//     address of flat PC p is Base + 4*p at every position, including
//     one-past-the-end-of-a-block fall-through slots;
//   - the sentinel slot (ir.OpSentinel) after the last real instruction
//     absorbs both fall-off-the-end and unresolvable branch targets; it is
//     detected *before* the limit check, matching the interpreter's
//     fall-through normalization order, and is never counted as an
//     executed instruction;
//   - per-run budget charging is exact because every execution entering at
//     pc executes precisely the instructions [pc, RunEnd[pc]] before
//     transferring control; the fault paths that abandon a pre-charged run
//     midway (Ld/St bounds faults, the sentinel) refund the tail and log a
//     byCorr range so the histogram stays exact;
//   - memoStep must see the *pre-normalized* successor position — the
//     (block, index+1) slot or the raw branch target — because the
//     interpreter normalizes at most one block forward; the careful tier
//     therefore derives that pair from the PInstr's CFG coordinates
//     instead of the flat successor;
//   - the call event carries the callee's register file and the return
//     event the returning frame's, exactly as the interpreter emits them;
//   - the dynamic instruction count lives in a countdown register (rem)
//     and is folded back into Stats.DynInstrs at every point that can
//     observe it: reuse execution, returns, trace emission, and run exit.
//     In batch mode the charge is "through the end of the current run",
//     which at every sync point (Reuse, Ret — both run enders) equals the
//     interpreter's count through the current instruction.

import (
	"fmt"

	"ccr/internal/ir"
)

// fframe is one call-stack frame of the predecoded engine.
type fframe struct {
	df      *ir.DecodedFunc
	regs    []int64
	pc      int // resume PC while a callee is active
	retDest ir.Reg
}

func (m *Machine) pushFFrame(df *ir.DecodedFunc, retDest ir.Reg) *fframe {
	regs := m.newRegs(df.Fn.NumRegs + 1)
	m.fframes = append(m.fframes, fframe{df: df, regs: regs, retDest: retDest})
	return &m.fframes[len(m.fframes)-1]
}

func (m *Machine) popFFrame() {
	fr := &m.fframes[len(m.fframes)-1]
	m.regPool = append(m.regPool, fr.regs)
	fr.regs = nil
	m.fframes = m.fframes[:len(m.fframes)-1]
}

// emitFlat builds the trace event for the instruction at flat PC pc of df.
// regs is the register file the event exposes (the callee's for Call, the
// executing frame's otherwise).
func (m *Machine) emitFlat(trace Tracer, df *ir.DecodedFunc, pc int, in *ir.PInstr, mt *ir.PMeta,
	v1, v2, addr, result int64, taken bool, tpc int64, regs []int64) {
	ev := &m.ev
	*ev = Event{
		Func: df.Fn, Block: mt.Block, Index: int(mt.Index), Instr: mt.Src,
		PC:   df.Addr(int32(pc)),
		Regs: regs,
		Val1: v1, Val2: v2, Addr: addr, Result: result,
		Taken: taken, TargetPC: tpc,
	}
	if in.Op == ir.Inval {
		ev.InvalCount = m.lastInval
	}
	trace(ev)
}

// batchFault finalizes a fault raised at flat PC pc of a pre-charged batch
// run: the tail (pc, RunEnd[pc]] was charged but never executed, so it is
// refunded from rem and subtracted from the histogram, while pc itself
// stays counted (the interpreter counts the faulting instruction).
func (m *Machine) batchFault(df *ir.DecodedFunc, pc int, rem *int64, limit int64, msg string) (int64, error) {
	re := df.RunEnd[pc]
	*rem += int64(re - int32(pc))
	m.Stats.DynInstrs = limit - *rem
	if int32(pc)+1 <= re {
		m.byCorr = append(m.byCorr, opCorr{df.Fn.ID, int32(pc) + 1, re})
	}
	m.flushOpCounts()
	mt := &df.Meta[pc]
	return 0, &Fault{df.Fn.Name, mt.Block, int(mt.Index), msg}
}

// specFault finalizes a Ld/St bounds fault raised inside a specialized
// region at flat PC pc. The spec has already charged the faulting run and
// written every register up to the fault back into the frame, so the
// interpreter's exact message is reconstructed from architectural state
// (the faulting op never executes, so its address operands are live) and
// the run tail is refunded through batchFault as usual.
func (m *Machine) specFault(df *ir.DecodedFunc, pc int, rem *int64, limit int64) (int64, error) {
	fr := &m.fframes[len(m.fframes)-1]
	in := &df.Code[pc]
	a := in.Imm
	if in.Src1 != ir.NoReg {
		a += fr.regs[in.Src1]
	}
	word := "load"
	if in.Op == ir.St {
		word = "store"
	}
	var msg string
	if uint64(a) >= uint64(len(m.Mem)) {
		msg = fmt.Sprintf("%s address %d out of range", word, a)
	} else {
		o := m.Prog.Objects[in.Aux]
		msg = fmt.Sprintf("%s address %d outside hinted object %s [%d,%d)", word, a, o.Name, o.Base, o.Base+o.Size)
	}
	return m.batchFault(df, pc, rem, limit, msg)
}

// runFast executes main over the predecoded program form.
func (m *Machine) runFast(args []int64) (int64, error) {
	dec := m.dec
	fr := m.pushFFrame(dec.Funcs[m.Prog.Main], ir.NoReg)
	for i, a := range args {
		fr.regs[i+1] = a
	}
	limit := m.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	trace := m.Trace
	dtm := m.DTM
	mem := m.Mem
	if m.specs == nil {
		m.bindSpecs()
	}
	if dtm != nil {
		m.ensureDTMElig()
	}

	// Hot state hoisted out of the frame, reloaded after call/return. The
	// instruction budget counts down in rem; Stats.DynInstrs is restored
	// as limit-rem wherever it can be observed.
	df := fr.df
	pc := 0
	rem := limit - m.Stats.DynInstrs
	byOp := &m.Stats.ByOp

outer:
	for {
		// ---- trace-memoization landing hook ----------------------------
		// Every arrival here is a landing (branch, jump, call, return or
		// reuse transfer; with DTM attached the batch tier exits at every
		// control transfer). The armed-memo gate matches the interpreter:
		// the careful recording path owns execution inside a region body.
		if dtm != nil && !m.memo.active {
			m.Stats.DynInstrs = limit - rem
			npc, err := m.dtmEnter(df, pc, fr.regs, limit)
			if err != nil {
				m.flushOpCounts()
				return 0, err
			}
			pc = npc
			rem = limit - m.Stats.DynInstrs
		}

		// ---- batch tier ------------------------------------------------
		// Eligible only when execution is unobservable (no tracer, no armed
		// memo) and the function has a batch form. The run containing pc is
		// charged up front; if it doesn't fit in the budget the careful
		// tier below takes over and finds the exact ErrLimit point.
		if trace == nil && !m.memo.active && df.XCode != nil {
			xcode := df.XCode
			runEnd := df.RunEnd
			cnt := m.entryCnt[df.Fn.ID]
			rp := (*[ir.RegFileCap]int64)(fr.regs[:ir.RegFileCap])
			sfn := m.specs[df.Fn.ID]
			var elig []bool
			if m.dtmElig != nil {
				elig = m.dtmElig[df.Fn.ID]
			}
		charge:
			for {
				k := int64(runEnd[pc]-int32(pc)) + 1
				if rem < k {
					// The run no longer fits: the careful tier owns the
					// limit endgame.
					break charge
				}
				// ---- specialization tier -------------------------------
				// A natively-compiled region body (internal/spec) takes
				// over at its bound entries. Specs charge the budget run
				// by run under the same rem>=k precondition, so the
				// careful tier still finds the exact ErrLimit point. They
				// never observe DTM landings, so the tier stands down
				// entirely while a trace buffer is attached; a region
				// containing stores stands down while function-level memo
				// markers are pending (the store must drop them).
				if sfn != nil && dtm == nil {
					if s := &sfn[pc]; s.fn != nil && (!s.hasStore || len(m.funcMemos) == 0) {
						npc32, srem, tkn, flt := s.fn(rp, mem, cnt, rem, int32(pc))
						if flt != -2 {
							rem = srem
							m.Stats.TakenBranches += tkn
							if flt >= 0 {
								return m.specFault(df, int(flt), &rem, limit)
							}
							pc = int(npc32)
							continue charge
						}
					}
				}
				rem -= k
				cnt[pc]++
				for {
					in := &xcode[pc]
					var npc int
					switch in.XOp {
					case ir.XNop:
						pc++
						continue
					case ir.XMovR:
						rp[in.Dest] = rp[in.Src1]
						pc++
						continue
					case ir.XMovI:
						rp[in.Dest] = in.Imm
						pc++
						continue
					case ir.XLeaR:
						rp[in.Dest] = in.Imm + rp[in.Src1]
						pc++
						continue
					case ir.XLeaI:
						rp[in.Dest] = in.Imm
						pc++
						continue
					case ir.XAddRR:
						rp[in.Dest] = rp[in.Src1] + rp[in.Src2]
						pc++
						continue
					case ir.XAddRI:
						rp[in.Dest] = rp[in.Src1] + in.Imm
						pc++
						continue
					case ir.XSubRR:
						rp[in.Dest] = rp[in.Src1] - rp[in.Src2]
						pc++
						continue
					case ir.XSubRI:
						rp[in.Dest] = rp[in.Src1] - in.Imm
						pc++
						continue
					case ir.XMulRR:
						rp[in.Dest] = rp[in.Src1] * rp[in.Src2]
						pc++
						continue
					case ir.XMulRI:
						rp[in.Dest] = rp[in.Src1] * in.Imm
						pc++
						continue
					case ir.XDivRR:
						var r int64
						if d := rp[in.Src2]; d != 0 {
							r = rp[in.Src1] / d
						}
						rp[in.Dest] = r
						pc++
						continue
					case ir.XDivRI:
						var r int64
						if in.Imm != 0 {
							r = rp[in.Src1] / in.Imm
						}
						rp[in.Dest] = r
						pc++
						continue
					case ir.XRemRR:
						var r int64
						if d := rp[in.Src2]; d != 0 {
							r = rp[in.Src1] % d
						}
						rp[in.Dest] = r
						pc++
						continue
					case ir.XRemRI:
						var r int64
						if in.Imm != 0 {
							r = rp[in.Src1] % in.Imm
						}
						rp[in.Dest] = r
						pc++
						continue
					case ir.XAndRR:
						rp[in.Dest] = rp[in.Src1] & rp[in.Src2]
						pc++
						continue
					case ir.XAndRI:
						rp[in.Dest] = rp[in.Src1] & in.Imm
						pc++
						continue
					case ir.XOrRR:
						rp[in.Dest] = rp[in.Src1] | rp[in.Src2]
						pc++
						continue
					case ir.XOrRI:
						rp[in.Dest] = rp[in.Src1] | in.Imm
						pc++
						continue
					case ir.XXorRR:
						rp[in.Dest] = rp[in.Src1] ^ rp[in.Src2]
						pc++
						continue
					case ir.XXorRI:
						rp[in.Dest] = rp[in.Src1] ^ in.Imm
						pc++
						continue
					case ir.XShlRR:
						rp[in.Dest] = rp[in.Src1] << (uint64(rp[in.Src2]) & 63)
						pc++
						continue
					case ir.XShlRI:
						rp[in.Dest] = rp[in.Src1] << (uint64(in.Imm) & 63)
						pc++
						continue
					case ir.XShrRR:
						rp[in.Dest] = int64(uint64(rp[in.Src1]) >> (uint64(rp[in.Src2]) & 63))
						pc++
						continue
					case ir.XShrRI:
						rp[in.Dest] = int64(uint64(rp[in.Src1]) >> (uint64(in.Imm) & 63))
						pc++
						continue
					case ir.XSraRR:
						rp[in.Dest] = rp[in.Src1] >> (uint64(rp[in.Src2]) & 63)
						pc++
						continue
					case ir.XSraRI:
						rp[in.Dest] = rp[in.Src1] >> (uint64(in.Imm) & 63)
						pc++
						continue
					case ir.XSltRR:
						rp[in.Dest] = b2i(rp[in.Src1] < rp[in.Src2])
						pc++
						continue
					case ir.XSltRI:
						rp[in.Dest] = b2i(rp[in.Src1] < in.Imm)
						pc++
						continue
					case ir.XSleRR:
						rp[in.Dest] = b2i(rp[in.Src1] <= rp[in.Src2])
						pc++
						continue
					case ir.XSleRI:
						rp[in.Dest] = b2i(rp[in.Src1] <= in.Imm)
						pc++
						continue
					case ir.XSeqRR:
						rp[in.Dest] = b2i(rp[in.Src1] == rp[in.Src2])
						pc++
						continue
					case ir.XSeqRI:
						rp[in.Dest] = b2i(rp[in.Src1] == in.Imm)
						pc++
						continue
					case ir.XSneRR:
						rp[in.Dest] = b2i(rp[in.Src1] != rp[in.Src2])
						pc++
						continue
					case ir.XSneRI:
						rp[in.Dest] = b2i(rp[in.Src1] != in.Imm)
						pc++
						continue
					case ir.XLd:
						a := rp[in.Src1] + in.Imm
						if uint64(a) >= uint64(len(mem)) {
							return m.batchFault(df, pc, &rem, limit,
								fmt.Sprintf("load address %d out of range", a))
						}
						if in.ObjHi >= 0 && (a < in.ObjLo || a >= in.ObjHi) {
							o := m.Prog.Objects[df.Code[pc].Aux]
							return m.batchFault(df, pc, &rem, limit,
								fmt.Sprintf("load address %d outside hinted object %s [%d,%d)", a, o.Name, o.Base, o.Base+o.Size))
						}
						rp[in.Dest] = mem[a]
						pc++
						continue
					case ir.XSt:
						a := rp[in.Src1] + in.Imm
						if uint64(a) >= uint64(len(mem)) {
							return m.batchFault(df, pc, &rem, limit,
								fmt.Sprintf("store address %d out of range", a))
						}
						if in.ObjHi >= 0 && (a < in.ObjLo || a >= in.ObjHi) {
							o := m.Prog.Objects[df.Code[pc].Aux]
							return m.batchFault(df, pc, &rem, limit,
								fmt.Sprintf("store address %d outside hinted object %s [%d,%d)", a, o.Name, o.Base, o.Base+o.Size))
						}
						mem[a] = rp[in.Src2]
						if dtm != nil {
							dtm.Store(ir.MemID(df.Code[pc].Aux))
						}
						if len(m.funcMemos) > 0 {
							m.dropFuncMemos()
						}
						pc++
						continue
					// ---- fused superinstructions -----------------------
					// Each XF case executes the adjacent pair (pc, pc+1)
					// in one dispatch; the second slot keeps its original
					// encoding and is read directly (fusion never pairs
					// across a run-entry PC, so no walk can land on it).
					case ir.XFShlIAdd:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] << (uint64(in.Imm) & 63)
						rp[in2.Dest] = rp[in2.Src1] + rp[in2.Src2]
						pc += 2
						continue
					case ir.XFShrIAndI:
						in2 := &xcode[pc+1]
						rp[in.Dest] = int64(uint64(rp[in.Src1]) >> (uint64(in.Imm) & 63))
						rp[in2.Dest] = rp[in2.Src1] & in2.Imm
						pc += 2
						continue
					case ir.XFSraIAndI:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] >> (uint64(in.Imm) & 63)
						rp[in2.Dest] = rp[in2.Src1] & in2.Imm
						pc += 2
						continue
					case ir.XFMulIAddI:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] * in.Imm
						rp[in2.Dest] = rp[in2.Src1] + in2.Imm
						pc += 2
						continue
					case ir.XFXorShlI:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] ^ rp[in.Src2]
						rp[in2.Dest] = rp[in2.Src1] << (uint64(in2.Imm) & 63)
						pc += 2
						continue
					case ir.XFXorIAdd:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] ^ in.Imm
						rp[in2.Dest] = rp[in2.Src1] + rp[in2.Src2]
						pc += 2
						continue
					case ir.XFAddMulI:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] + rp[in.Src2]
						rp[in2.Dest] = rp[in2.Src1] * in2.Imm
						pc += 2
						continue
					case ir.XFAddAdd:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] + rp[in.Src2]
						rp[in2.Dest] = rp[in2.Src1] + rp[in2.Src2]
						pc += 2
						continue
					case ir.XFAddAddI:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] + rp[in.Src2]
						rp[in2.Dest] = rp[in2.Src1] + in2.Imm
						pc += 2
						continue
					case ir.XFAddAndI:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] + rp[in.Src2]
						rp[in2.Dest] = rp[in2.Src1] & in2.Imm
						pc += 2
						continue
					case ir.XFAddXor:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] + rp[in.Src2]
						rp[in2.Dest] = rp[in2.Src1] ^ rp[in2.Src2]
						pc += 2
						continue
					case ir.XFAndILeaR:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] & in.Imm
						rp[in2.Dest] = in2.Imm + rp[in2.Src1]
						pc += 2
						continue
					case ir.XFShlIXor:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] << (uint64(in.Imm) & 63)
						rp[in2.Dest] = rp[in2.Src1] ^ rp[in2.Src2]
						pc += 2
						continue
					case ir.XFAddLd:
						in2 := &xcode[pc+1]
						rp[in.Dest] = rp[in.Src1] + rp[in.Src2]
						a := rp[in2.Src1] + in2.Imm
						if uint64(a) >= uint64(len(mem)) {
							return m.batchFault(df, pc+1, &rem, limit,
								fmt.Sprintf("load address %d out of range", a))
						}
						if in2.ObjHi >= 0 && (a < in2.ObjLo || a >= in2.ObjHi) {
							o := m.Prog.Objects[df.Code[pc+1].Aux]
							return m.batchFault(df, pc+1, &rem, limit,
								fmt.Sprintf("load address %d outside hinted object %s [%d,%d)", a, o.Name, o.Base, o.Base+o.Size))
						}
						rp[in2.Dest] = mem[a]
						pc += 2
						continue
					case ir.XFAddIJmp:
						rp[in.Dest] = rp[in.Src1] + in.Imm
						npc = int(xcode[pc+1].Target)
					case ir.XJmp:
						npc = int(in.Target)
					case ir.XBeqRR:
						if rp[in.Src1] == rp[in.Src2] {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBeqRI:
						if rp[in.Src1] == in.Imm {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBneRR:
						if rp[in.Src1] != rp[in.Src2] {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBneRI:
						if rp[in.Src1] != in.Imm {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBltRR:
						if rp[in.Src1] < rp[in.Src2] {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBltRI:
						if rp[in.Src1] < in.Imm {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBgeRR:
						if rp[in.Src1] >= rp[in.Src2] {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBgeRI:
						if rp[in.Src1] >= in.Imm {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBleRR:
						if rp[in.Src1] <= rp[in.Src2] {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBleRI:
						if rp[in.Src1] <= in.Imm {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBgtRR:
						if rp[in.Src1] > rp[in.Src2] {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XBgtRI:
						if rp[in.Src1] > in.Imm {
							m.Stats.TakenBranches++
							npc = int(in.Target)
						} else {
							npc = pc + 1
						}
					case ir.XCall:
						cdf := dec.Funcs[in.ObjLo]
						fr.pc = pc + 1 // return point; set before push (append may move frames)
						nf := m.pushFFrame(cdf, ir.Reg(in.Dest))
						caller := &m.fframes[len(m.fframes)-2]
						for i, a := range df.Meta[pc].Src.Args {
							nf.regs[i+1] = caller.regs[a]
						}
						fr = nf
						df = cdf
						pc = 0
						continue outer
					case ir.XRetR, ir.XRetI:
						m.Stats.DynInstrs = limit - rem
						retVal := in.Imm
						if in.XOp == ir.XRetR {
							retVal = rp[in.Src1]
						}
						dest := fr.retDest
						m.popFFrame()
						if len(m.funcMemos) > 0 {
							m.commitFuncMemos(retVal, len(m.fframes))
						}
						if len(m.fframes) == 0 {
							m.flushOpCounts()
							return retVal, nil
						}
						fr = &m.fframes[len(m.fframes)-1]
						if dest != ir.NoReg {
							fr.regs[dest] = retVal
						}
						df = fr.df
						pc = fr.pc
						continue outer
					case ir.XReuse:
						m.Stats.DynInstrs = limit - rem
						hit, _, _, _ := m.execReuse(ir.RegionID(in.ObjLo), fr.regs, df.Fn.NumRegs, len(m.fframes))
						if hit {
							npc = int(in.Target)
						} else if m.memo.active {
							// The miss armed recording; the careful tier
							// owns the region body.
							pc++
							continue outer
						} else {
							npc = pc + 1
						}
					case ir.XInval:
						m.Stats.Invalidations++
						m.lastInval = 0
						if m.CRB != nil {
							m.lastInval = m.CRB.Invalidate(ir.MemID(in.ObjLo))
						}
						if len(m.funcMemos) > 0 {
							m.dropFuncMemos()
						}
						pc++
						continue
					case ir.XEnd:
						// The sentinel is not an executed instruction:
						// refund its pre-charge before faulting.
						rem++
						m.Stats.DynInstrs = limit - rem
						m.byCorr = append(m.byCorr, opCorr{df.Fn.ID, int32(pc), int32(pc)})
						m.flushOpCounts()
						return 0, &Fault{df.Fn.Name, ir.BlockID(len(df.Fn.Blocks)), 0, "fell off end of function"}
					default:
						// XBad never survives batchDecode; defensive only.
						return m.batchFault(df, pc, &rem, limit,
							fmt.Sprintf("invalid opcode %d", df.Code[pc].Op))
					}
					// Control transferred. With DTM attached a transfer is
					// a landing: return to the tier dispatch so the hook
					// above runs — unless nothing is armed and the landing
					// head is statically ineligible, making the hook a
					// proven no-op; then (as with no DTM at all) loop back
					// to charge the next run, or hand the endgame to the
					// careful tier when it no longer fits.
					if dtm != nil && (m.dtmArmed || elig == nil || elig[npc]) {
						pc = npc
						continue outer
					}
					pc = npc
					continue charge
				}
			}
		}

		// ---- careful tier ----------------------------------------------
		// One straight-line run at a time, with full per-instruction
		// accounting; control transfers return to the tier dispatch above.
		code := df.Code
		meta := df.Meta
		regs := fr.regs
		for {
			// The sentinel slot is the last element of Code; reaching it
			// (by fall-through or an unresolvable branch target) is the
			// fell-off-the-end fault, detected before the limit check to
			// match the interpreter's normalization order.
			if uint(pc) >= uint(len(code)-1) {
				m.Stats.DynInstrs = limit - rem
				m.flushOpCounts()
				return 0, &Fault{df.Fn.Name, ir.BlockID(len(df.Fn.Blocks)), 0, "fell off end of function"}
			}
			in := &code[pc]
			if rem <= 0 {
				m.Stats.DynInstrs = limit - rem
				m.flushOpCounts()
				return 0, ErrLimit
			}
			rem--
			byOp[in.Op]++

			var result, addr int64
			taken := false
			ctrl := false // ends the current straight-line run
			nextPC := pc + 1

			// Unconditional operand loads (register 0 always exists), then a
			// branchless select: NoReg means 0 for Src1 and the immediate for
			// Src2, exactly as the interpreter resolves operands.
			v1 := regs[in.Src1]
			if in.Src1 == ir.NoReg {
				v1 = 0
			}
			v2 := regs[in.Src2]
			if in.Src2 == ir.NoReg {
				v2 = in.Imm
			}

			memoActive := m.memo.active
			if memoActive {
				// Record first-use inputs before any definition below.
				ok := true
				switch in.Op {
				case ir.Call:
					for _, a := range meta[pc].Src.Args {
						ok = ok && m.memo.noteUse(a, regs[a])
					}
				default:
					if in.Src1 != ir.NoReg {
						ok = m.memo.noteUse(in.Src1, v1)
					}
					if ok && in.Src2 != ir.NoReg {
						ok = m.memo.noteUse(in.Src2, v2)
					}
				}
				if !ok {
					m.abortMemo()
					memoActive = false
				}
			}

			switch in.Op {
			case ir.Nop:
			case ir.Mov:
				result = v1
				regs[in.Dest] = result
			case ir.MovI:
				result = in.Imm
				regs[in.Dest] = result
			case ir.Lea:
				result = in.ObjLo + in.Imm
				if in.Src1 != ir.NoReg {
					result += v1
				}
				regs[in.Dest] = result
			case ir.Add:
				result = v1 + v2
				regs[in.Dest] = result
			case ir.Sub:
				result = v1 - v2
				regs[in.Dest] = result
			case ir.Mul:
				result = v1 * v2
				regs[in.Dest] = result
			case ir.Div:
				if v2 != 0 {
					result = v1 / v2
				}
				regs[in.Dest] = result
			case ir.Rem:
				if v2 != 0 {
					result = v1 % v2
				}
				regs[in.Dest] = result
			case ir.And:
				result = v1 & v2
				regs[in.Dest] = result
			case ir.Or:
				result = v1 | v2
				regs[in.Dest] = result
			case ir.Xor:
				result = v1 ^ v2
				regs[in.Dest] = result
			case ir.Shl:
				result = v1 << (uint64(v2) & 63)
				regs[in.Dest] = result
			case ir.Shr:
				result = int64(uint64(v1) >> (uint64(v2) & 63))
				regs[in.Dest] = result
			case ir.Sra:
				result = v1 >> (uint64(v2) & 63)
				regs[in.Dest] = result
			case ir.Slt:
				result = b2i(v1 < v2)
				regs[in.Dest] = result
			case ir.Sle:
				result = b2i(v1 <= v2)
				regs[in.Dest] = result
			case ir.Seq:
				result = b2i(v1 == v2)
				regs[in.Dest] = result
			case ir.Sne:
				result = b2i(v1 != v2)
				regs[in.Dest] = result
			case ir.Ld:
				addr = v1 + in.Imm
				if uint64(addr) >= uint64(len(mem)) {
					m.Stats.DynInstrs = limit - rem
					m.flushOpCounts()
					return 0, &Fault{df.Fn.Name, meta[pc].Block, int(meta[pc].Index),
						fmt.Sprintf("load address %d out of range", addr)}
				}
				if in.ObjHi >= 0 && (addr < in.ObjLo || addr >= in.ObjHi) {
					m.Stats.DynInstrs = limit - rem
					m.flushOpCounts()
					o := m.Prog.Objects[in.Aux]
					return 0, &Fault{df.Fn.Name, meta[pc].Block, int(meta[pc].Index),
						fmt.Sprintf("load address %d outside hinted object %s [%d,%d)", addr, o.Name, o.Base, o.Base+o.Size)}
				}
				result = mem[addr]
				regs[in.Dest] = result
				if memoActive {
					// Loads of writable objects make the instance depend on
					// memory state; static (read-only) data needs no
					// validation. A load with unknown provenance cannot be
					// inside a compiler-formed region — abort defensively.
					switch {
					case ir.MemID(in.Aux) == ir.NoMem:
						m.abortMemo()
						memoActive = false
					case !m.readOnly[in.Aux]:
						m.memo.usesMem = true
					}
				}
			case ir.St:
				addr = v1 + in.Imm
				if uint64(addr) >= uint64(len(mem)) {
					m.Stats.DynInstrs = limit - rem
					m.flushOpCounts()
					return 0, &Fault{df.Fn.Name, meta[pc].Block, int(meta[pc].Index),
						fmt.Sprintf("store address %d out of range", addr)}
				}
				if in.ObjHi >= 0 && (addr < in.ObjLo || addr >= in.ObjHi) {
					m.Stats.DynInstrs = limit - rem
					m.flushOpCounts()
					o := m.Prog.Objects[in.Aux]
					return 0, &Fault{df.Fn.Name, meta[pc].Block, int(meta[pc].Index),
						fmt.Sprintf("store address %d outside hinted object %s [%d,%d)", addr, o.Name, o.Base, o.Base+o.Size)}
				}
				mem[addr] = v2
				if dtm != nil {
					dtm.Store(ir.MemID(in.Aux))
				}
				if memoActive {
					// Regions never contain stores; defensive abort.
					m.abortMemo()
					memoActive = false
				}
				if len(m.funcMemos) > 0 {
					// Pure-callee selection forbids this; never record a
					// result that observed a store.
					m.dropFuncMemos()
				}
			case ir.Jmp:
				taken = true
				ctrl = true
				nextPC = int(in.Target)
			case ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt:
				switch in.Op {
				case ir.Beq:
					taken = v1 == v2
				case ir.Bne:
					taken = v1 != v2
				case ir.Blt:
					taken = v1 < v2
				case ir.Bge:
					taken = v1 >= v2
				case ir.Ble:
					taken = v1 <= v2
				case ir.Bgt:
					taken = v1 > v2
				}
				m.Stats.Branches++
				ctrl = true
				if taken {
					m.Stats.TakenBranches++
					nextPC = int(in.Target)
				}
			case ir.Call:
				if memoActive {
					m.abortMemo()
					memoActive = false
				}
				cdf := dec.Funcs[in.Aux]
				fr.pc = nextPC // return point; set before push (append may move frames)
				nf := m.pushFFrame(cdf, in.Dest)
				caller := &m.fframes[len(m.fframes)-2]
				for i, a := range meta[pc].Src.Args {
					nf.regs[i+1] = caller.regs[a]
				}
				if trace != nil {
					m.Stats.DynInstrs = limit - rem
					m.emitFlat(trace, df, pc, in, &meta[pc], v1, v2, 0, 0, true, cdf.Base, nf.regs)
				}
				fr = nf
				df = cdf
				pc = 0
				continue outer
			case ir.Ret:
				if memoActive {
					m.abortMemo()
					memoActive = false
				}
				m.Stats.DynInstrs = limit - rem
				retVal := in.Imm
				if in.Src1 != ir.NoReg {
					retVal = v1
				}
				if trace != nil {
					tpc := int64(0)
					if len(m.fframes) > 1 {
						p := &m.fframes[len(m.fframes)-2]
						tpc = p.df.Addr(int32(p.pc))
					}
					m.emitFlat(trace, df, pc, in, &meta[pc], v1, v2, 0, retVal, true, tpc, regs)
				}
				dest := fr.retDest
				m.popFFrame()
				if len(m.funcMemos) > 0 {
					m.commitFuncMemos(retVal, len(m.fframes))
				}
				if len(m.fframes) == 0 {
					m.flushOpCounts()
					return retVal, nil
				}
				fr = &m.fframes[len(m.fframes)-1]
				if dest != ir.NoReg {
					fr.regs[dest] = retVal
				}
				df = fr.df
				pc = fr.pc
				continue outer
			case ir.Reuse:
				m.Stats.DynInstrs = limit - rem
				hit, rin, rout, reused := m.execReuse(ir.RegionID(in.Aux), regs, df.Fn.NumRegs, len(m.fframes))
				taken = hit
				if hit {
					nextPC = int(in.Target)
				}
				if trace != nil {
					tpc := df.Addr(in.Target)
					if !hit {
						tpc = df.Addr(int32(pc + 1))
					}
					mt := &meta[pc]
					ev := &m.ev
					*ev = Event{
						Func: df.Fn, Block: mt.Block, Index: int(mt.Index), Instr: mt.Src,
						PC:   df.Addr(int32(pc)),
						Regs: regs,
						Taken: hit, TargetPC: tpc,
						ReuseHit: hit, ReuseIn: rin, ReuseOut: rout, ReusedInstrs: reused,
					}
					trace(ev)
				}
				pc = nextPC
				continue outer
			case ir.Inval:
				m.Stats.Invalidations++
				m.lastInval = 0
				if m.CRB != nil {
					m.lastInval = m.CRB.Invalidate(ir.MemID(in.Aux))
				}
				if memoActive {
					m.abortMemo()
					memoActive = false
				}
				if len(m.funcMemos) > 0 {
					m.dropFuncMemos()
				}
			default:
				m.Stats.DynInstrs = limit - rem
				m.flushOpCounts()
				return 0, &Fault{df.Fn.Name, meta[pc].Block, int(meta[pc].Index), fmt.Sprintf("invalid opcode %d", in.Op)}
			}

			if memoActive {
				// memoStep wants the interpreter's pre-normalized successor
				// position, derived from the CFG coordinates (see the file
				// comment).
				mt := &meta[pc]
				var nb ir.BlockID
				var ni int
				if taken {
					nb, ni = mt.Src.Target, 0
				} else {
					nb, ni = mt.Block, int(mt.Index)+1
				}
				m.memoStep(df.Fn, mt.Src, result, nb, ni)
			}

			if trace != nil {
				m.Stats.DynInstrs = limit - rem
				tpc := int64(0)
				if in.Op.IsBranch() {
					tpc = df.Addr(int32(nextPC))
				}
				m.emitFlat(trace, df, pc, in, &meta[pc], v1, v2, addr, result, taken, tpc, regs)
			}
			pc = nextPC
			if ctrl {
				continue outer
			}
		}
	}
}
