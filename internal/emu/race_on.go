//go:build race

package emu

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
