//go:build !race

package emu

// raceEnabled reports whether the race detector is compiled in (the
// instrumented runtime allocates on paths the allocation-free guarantee
// does not cover, so TestRunAllocs skips under -race).
const raceEnabled = false
