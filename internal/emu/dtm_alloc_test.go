package emu

import (
	"testing"

	"ccr/internal/reuse"
	"ccr/internal/workloads"
)

// TestRunAllocsDTM extends the batch tier's allocation-free guarantee to
// the trace-memoization scheme: with a warm DTM attached (and still no
// tracer), steady-state Reset+Run performs zero heap allocations — the
// DTM's lookup, recording and store-invalidation paths all work out of
// preallocated entry storage. The hit count is checked so the guarantee
// is not proved on a buffer that never engaged.
func TestRunAllocsDTM(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented runtime allocates outside the engine's control")
	}
	w := workloads.Load("compress", workloads.Tiny)
	d := reuse.NewDTM(reuse.DefaultDTMConfig(), w.Prog)
	m := New(w.Prog)
	m.DTM = d
	if _, err := m.Run(w.Train...); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Hits == 0 {
		t.Fatal("warm-up run never hit a trace — the alloc check is vacuous")
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.Reset()
		if _, err := m.Run(w.Train...); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset+Run with DTM allocates %v times per run, want 0", allocs)
	}
}
