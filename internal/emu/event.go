package emu

import "ccr/internal/ir"

// Event describes one dynamic instruction as it executes. A single Event
// value is reused across the run; consumers must copy anything they keep.
type Event struct {
	Func  *ir.Func
	Block ir.BlockID
	Index int
	Instr *ir.Instr

	// PC is the instruction's byte address (for I-cache and BTB models).
	PC int64

	// Regs is a read-only view of the executing frame's register file
	// (index by ir.Reg). Consumers must not modify or retain it.
	Regs []int64

	// Val1 and Val2 are the resolved source operand values (Val2 is the
	// immediate when Src2 is NoReg).
	Val1, Val2 int64
	// Result is the value written to the destination register, if any.
	Result int64

	// Addr is the effective word address for Ld and St.
	Addr int64

	// Taken reports whether a branch redirected control flow; TargetPC is
	// the byte address control transfers to (the fall-through address for
	// untaken branches).
	Taken    bool
	TargetPC int64

	// Reuse-instruction facts.
	ReuseHit bool
	// ReuseIn and ReuseOut are the matched instance's bank sizes on a
	// hit (they bound the read-state and commit phases of §3.3).
	ReuseIn, ReuseOut int
	// ReusedInstrs is the dynamic instruction count eliminated by a hit.
	ReusedInstrs int

	// InvalCount is the instance fan-out of an executed Inval instruction
	// (how many CRB instances it killed); zero for every other opcode.
	InvalCount int
}

// Tracer receives every dynamic instruction. It is a plain function for
// call overhead reasons; nil disables tracing.
type Tracer func(*Event)

// Tee fans one event stream out to several tracers, invoked in order. Nil
// tracers are skipped; with zero or one live tracer no wrapper is built.
func Tee(tracers ...Tracer) Tracer {
	live := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev *Event) {
		for _, t := range live {
			t(ev)
		}
	}
}

// RegionStats aggregates per-region dynamic reuse behaviour for the
// Figure 9(b)/10 analyses.
type RegionStats struct {
	Hits         int64 // reuse-instruction hits
	Misses       int64 // reuse-instruction misses
	ReusedInstrs int64 // dynamic instructions eliminated
	Records      int64 // instances committed
	Aborts       int64 // memoization attempts abandoned
}

// Stats aggregates whole-run dynamic counts.
type Stats struct {
	// DynInstrs counts instructions actually executed (reused region
	// bodies are not executed and so not counted here).
	DynInstrs int64
	// ByOp breaks DynInstrs down by opcode.
	ByOp [64]int64
	// Branches and TakenBranches count executed control transfers
	// (conditional branches only).
	Branches, TakenBranches int64

	// ReuseHits and ReuseMisses count reuse-instruction outcomes;
	// ReusedInstrs is the total dynamic instructions eliminated.
	ReuseHits, ReuseMisses int64
	ReusedInstrs           int64
	// DTMHits counts trace-memoization replays (each charges one dynamic
	// instruction); DTMReusedInstrs is the dynamic instructions those
	// replays eliminated. Zero unless a Machine.DTM is attached.
	DTMHits         int64
	DTMReusedInstrs int64
	// MemoAborts counts abandoned memoization attempts (region exits).
	MemoAborts int64
	// Invalidations counts executed invalidate instructions.
	Invalidations int64

	// Regions holds per-region counters, indexed by RegionID.
	Regions map[ir.RegionID]*RegionStats
}

func (s *Stats) region(id ir.RegionID) *RegionStats {
	if s.Regions == nil {
		s.Regions = map[ir.RegionID]*RegionStats{}
	}
	rs := s.Regions[id]
	if rs == nil {
		rs = &RegionStats{}
		s.Regions[id] = rs
	}
	return rs
}
