package emu

import (
	"ccr/internal/ir"
	"ccr/internal/telemetry"
)

// TelemetryTracer adapts the dynamic event stream to a telemetry trace
// collector: the reuse-relevant events — region entry on a miss, reuse
// hits with their eliminated-instruction counts, and invalidations with
// their fan-out — are recorded; every other instruction is ignored, so
// the per-event cost off those opcodes is a single opcode compare.
// Combine with another consumer via Tee:
//
//	m.Trace = emu.Tee(sim.Tracer(), emu.TelemetryTracer(tr))
func TelemetryTracer(tr *telemetry.Trace) Tracer {
	return func(ev *Event) {
		switch ev.Instr.Op {
		case ir.Reuse:
			kind := telemetry.EventRegionEnter
			if ev.ReuseHit {
				kind = telemetry.EventReuseHit
			}
			tr.Add(telemetry.TraceEvent{
				Kind:   kind,
				Region: ev.Instr.Region,
				Reused: ev.ReusedInstrs,
				PC:     ev.PC,
			})
		case ir.Inval:
			tr.Add(telemetry.TraceEvent{
				Kind:   telemetry.EventInvalidate,
				Mem:    ev.Instr.Mem,
				Fanout: ev.InvalCount,
				PC:     ev.PC,
			})
		}
	}
}
