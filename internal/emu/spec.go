package emu

// This file binds the hot-region specialization registry (internal/spec)
// to a machine's decoded program — the third execution tier's link step.
// Binding is by content digest: a region attaches to a function only when
// every region entry's run digest matches the function's RunKeys, so a
// relink that changes any member instruction, branch target, or folded
// object address unbinds the specialization instead of running stale code.
// Bindings are per-machine and built lazily on the first fast run, which
// is what makes NoSpec settable after New and re-linked programs start
// from a clean table.

import (
	"os"

	"ccr/internal/spec"
	// Arm the shipped specializations for the built-in workloads; other
	// programs never digest-match them and run the generic tiers.
	_ "ccr/internal/specgen/gen"
)

// specDisabled turns the specialization tier off for every new Machine
// when CCR_SPEC=off is set in the environment — the sweep-wide escape
// hatch, mirroring CCR_ENGINE.
var specDisabled = os.Getenv("CCR_SPEC") == "off"

// specSlot is one bound region entry: the compiled body to run when the
// batch tier reaches this PC, plus the store flag that gates entry while
// function-level memo markers are pending.
type specSlot struct {
	fn       spec.Fn
	hasStore bool
}

// bindSpecs resolves the registry against the decoded program into
// specs[f][pc] tables. Regions are applied in spec.Regions() order, so a
// later (name-sorted) region wins a contested entry deterministically.
func (m *Machine) bindSpecs() {
	m.specs = make([][]specSlot, len(m.dec.Funcs))
	if m.NoSpec || specDisabled {
		return
	}
	for _, rg := range spec.Regions() {
		if rg.Fn == nil || len(rg.Entries) == 0 {
			continue
		}
		for fid, df := range m.dec.Funcs {
			if df.RunKeys == nil {
				continue
			}
			ok := true
			for _, e := range rg.Entries {
				if e.PC < 0 || int(e.PC) >= len(df.RunKeys) || df.RunKeys[e.PC] != e.Key {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			sl := m.specs[fid]
			if sl == nil {
				sl = make([]specSlot, len(df.Code))
				m.specs[fid] = sl
			}
			for _, e := range rg.Entries {
				sl[e.PC] = specSlot{fn: rg.Fn, hasStore: rg.HasStore}
			}
		}
	}
}

// SpecsBound reports how many region entry PCs are bound to this
// machine's program (forcing the lazy bind). Tests use it to pin the
// digest-matching and relink-invalidation discipline.
func (m *Machine) SpecsBound() int {
	if m.specs == nil {
		m.bindSpecs()
	}
	n := 0
	for _, sl := range m.specs {
		for i := range sl {
			if sl[i].fn != nil {
				n++
			}
		}
	}
	return n
}
