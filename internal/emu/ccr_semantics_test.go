package emu

import (
	"testing"

	"ccr/internal/crb"
	"ccr/internal/ir"
)

// buildManualRegion hand-assembles a transformed program, pinning the
// architectural semantics of the CCR extensions independent of the
// compiler passes:
//
//	main(n):
//	  b0: k=0; acc=0
//	  b1: if k>=n goto b7
//	  b2: sel = k & mask
//	  b3: REUSE region0 → b5
//	  b4: x = sel*3; x = x+7   (region body; x live-out, end marker)
//	  b5: acc += x             (continuation)
//	  b6: k++; goto b1
//	  b7: ret acc
func buildManualRegion(t *testing.T, mask int64) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("manual")
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	b5 := f.NewBlock()
	b6 := f.NewBlock()
	b7 := f.NewBlock()
	k, acc, sel, x := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b7.ID())
	b2.AndI(sel, k, mask)
	b3.Emit(ir.Instr{Op: ir.Reuse, Region: 0, Target: b5.ID(), Mem: ir.NoMem})
	mul := b4.MulI(x, sel, 3)
	mul.Region = 0
	mul.Attr |= ir.AttrLiveOut
	add := b4.AddI(x, x, 7)
	add.Region = 0
	add.Attr |= ir.AttrLiveOut | ir.AttrRegionEnd
	b5.Add(acc, acc, x)
	b6.AddI(k, k, 1)
	b6.Jmp(b1.ID())
	b7.Ret(acc)
	p := pb.Build()
	p.Regions = []*ir.Region{{
		ID: 0, Func: f.ID(), Class: ir.Stateless, Kind: ir.Acyclic,
		Inception: b3.ID(), Body: b4.ID(), Continuation: b5.ID(),
		Inputs: []ir.Reg{sel}, Outputs: []ir.Reg{x}, StaticSize: 2,
	}}
	p.Link()
	return ir.MustVerify(p)
}

func TestMemoizationRecordsAndReuses(t *testing.T) {
	p := buildManualRegion(t, 3)
	m := New(p)
	m.CRB = crb.New(crb.Config{Entries: 8, Instances: 4}, p)
	got, err := m.Run(100)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Expected: sum over k of ((k&3)*3+7).
	var want int64
	for k := int64(0); k < 100; k++ {
		want += (k&3)*3 + 7
	}
	if got != want {
		t.Fatalf("result %d, want %d", got, want)
	}
	// Four distinct selectors: 4 misses, 96 hits.
	if m.Stats.ReuseMisses != 4 || m.Stats.ReuseHits != 96 {
		t.Fatalf("hits=%d misses=%d, want 96/4", m.Stats.ReuseHits, m.Stats.ReuseMisses)
	}
	// Each hit skips the 2-instruction body.
	if m.Stats.ReusedInstrs != 96*2 {
		t.Fatalf("reused instrs = %d", m.Stats.ReusedInstrs)
	}
	rs := m.Stats.Regions[0]
	if rs == nil || rs.Records != 4 {
		t.Fatalf("region stats: %+v", rs)
	}
}

func TestInstanceCapacityEviction(t *testing.T) {
	// Eight distinct selectors but only 2 instances: LRU round-robin
	// means (almost) every lookup misses.
	p := buildManualRegion(t, 7)
	m := New(p)
	m.CRB = crb.New(crb.Config{Entries: 8, Instances: 2}, p)
	if _, err := m.Run(64); err != nil {
		t.Fatal(err)
	}
	if m.Stats.ReuseHits != 0 {
		t.Fatalf("round-robin over capacity should never hit, got %d", m.Stats.ReuseHits)
	}
	// With 8 instances everything after warmup hits.
	m2 := New(p)
	m2.CRB = crb.New(crb.Config{Entries: 8, Instances: 8}, p)
	if _, err := m2.Run(64); err != nil {
		t.Fatal(err)
	}
	if m2.Stats.ReuseHits != 64-8 {
		t.Fatalf("hits = %d, want 56", m2.Stats.ReuseHits)
	}
}

func TestNilCRBAlwaysMisses(t *testing.T) {
	p := buildManualRegion(t, 3)
	m := New(p)
	got, err := m.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for k := int64(0); k < 50; k++ {
		want += (k&3)*3 + 7
	}
	if got != want {
		t.Fatalf("result %d, want %d", got, want)
	}
	if m.Stats.ReuseHits != 0 || m.Stats.ReuseMisses != 50 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

// buildExitRegion adds a side exit: when sel == 0 the body branches out of
// the region (abort path, AttrRegionExit), so only sel != 0 paths record.
func buildExitRegion(t *testing.T) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("exit")
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()  // region body with exit branch
	b4b := f.NewBlock() // rest of body
	b5 := f.NewBlock()  // continuation
	b6 := f.NewBlock()
	b7 := f.NewBlock()
	bExit := f.NewBlock() // side-exit landing pad
	k, acc, sel, x := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b7.ID())
	b2.AndI(sel, k, 3)
	b3.Emit(ir.Instr{Op: ir.Reuse, Region: 0, Target: b5.ID(), Mem: ir.NoMem})
	br := b4.BeqI(sel, 0, bExit.ID())
	br.Region = 0
	br.Attr |= ir.AttrRegionExit
	mul := b4b.MulI(x, sel, 5)
	mul.Region = 0
	mul.Attr |= ir.AttrLiveOut
	end := b4b.AddI(x, x, 1)
	end.Region = 0
	end.Attr |= ir.AttrLiveOut | ir.AttrRegionEnd
	b5.Add(acc, acc, x)
	b6.AddI(k, k, 1)
	b6.Jmp(b1.ID())
	b7.Ret(acc)
	bExit.MovI(x, 100)
	bExit.Jmp(b5.ID())
	p := pb.Build()
	p.Regions = []*ir.Region{{
		ID: 0, Func: f.ID(), Class: ir.Stateless, Kind: ir.Acyclic,
		Inception: b3.ID(), Body: b4.ID(), Continuation: b5.ID(),
		Inputs: []ir.Reg{sel}, Outputs: []ir.Reg{x}, StaticSize: 3,
	}}
	p.Link()
	return ir.MustVerify(p)
}

func TestSideExitAbortsMemoization(t *testing.T) {
	p := buildExitRegion(t)
	m := New(p)
	m.CRB = crb.New(crb.Config{Entries: 8, Instances: 4}, p)
	got, err := m.Run(80)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for k := int64(0); k < 80; k++ {
		sel := k & 3
		if sel == 0 {
			want += 100
		} else {
			want += sel*5 + 1
		}
	}
	if got != want {
		t.Fatalf("result %d, want %d", got, want)
	}
	// sel==0 invocations (20 of 80) abort and never record: they miss
	// every time. The other three selectors record once each.
	if m.Stats.MemoAborts != 20 {
		t.Fatalf("aborts = %d, want 20", m.Stats.MemoAborts)
	}
	if m.Stats.ReuseHits != 80-20-3 {
		t.Fatalf("hits = %d, want 57", m.Stats.ReuseHits)
	}
}

// TestInvalidateDropsMemoryInstances pins the Inval semantics end to end.
func TestInvalidateDropsMemoryInstances(t *testing.T) {
	pb := ir.NewProgramBuilder("inval")
	tab := pb.Object("tab", 4, []int64{10, 20, 30, 40})
	f := pb.Func("main", 1)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock() // region body: load tab[sel]
	b5 := f.NewBlock() // continuation
	b6 := f.NewBlock()
	bm := f.NewBlock() // mutation + compiler-placed invalidate
	b7 := f.NewBlock()
	k, acc, sel, x, ptr := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b0.MovI(k, 0)
	b0.MovI(acc, 0)
	b1.Bge(k, f.Param(0), b7.ID())
	b2.AndI(sel, k, 3)
	b3.Emit(ir.Instr{Op: ir.Reuse, Region: 0, Target: b5.ID(), Mem: ir.NoMem})
	lea := b4.LeaIdx(ptr, tab, sel, 0)
	lea.Region = 0
	ld := b4.Ld(x, ptr, 0, tab)
	ld.Region = 0
	ld.Attr |= ir.AttrDeterminable | ir.AttrLiveOut
	end := b4.AddI(x, x, 0)
	end.Region = 0
	end.Attr |= ir.AttrLiveOut | ir.AttrRegionEnd
	b5.Add(acc, acc, x)
	// Mutate tab[1] every 16th iteration, with the compiler-placed Inval.
	tail := f.NewReg()
	b6.AndI(tail, k, 15)
	b6.AddI(k, k, 1)
	b6.BneI(tail, 15, b1.ID())
	bm.Lea(ptr, tab, 1)
	bm.St(ptr, 0, k, tab)
	bm.Emit(ir.Instr{Op: ir.Inval, Mem: tab})
	bm.Jmp(b1.ID())
	b7.Ret(acc)
	p := pb.Build()
	p.Regions = []*ir.Region{{
		ID: 0, Func: f.ID(), Class: ir.MemoryDependent, Kind: ir.Acyclic,
		Inception: b3.ID(), Body: b4.ID(), Continuation: b5.ID(),
		Inputs: []ir.Reg{sel}, Outputs: []ir.Reg{x},
		MemObjects: []ir.MemID{tab}, StaticSize: 3,
	}}
	p.Link()
	ir.MustVerify(p)

	run := func(cfg *crb.Config) (int64, Stats) {
		m := New(p)
		if cfg != nil {
			m.CRB = crb.New(*cfg, p)
		}
		got, err := m.Run(128)
		if err != nil {
			t.Fatal(err)
		}
		return got, m.Stats
	}
	wantRes, _ := run(nil)
	cfg := crb.Config{Entries: 8, Instances: 4}
	gotRes, st := run(&cfg)
	if gotRes != wantRes {
		t.Fatalf("result %d, want %d (stale value reused after store?)", gotRes, wantRes)
	}
	if st.Invalidations != 8 {
		t.Fatalf("invalidations = %d, want 8", st.Invalidations)
	}
	// Each invalidation wipes all four instances; they re-record over the
	// next four distinct selectors.
	if st.ReuseMisses < 8*4 {
		t.Fatalf("misses = %d, want ≥ 32 (re-recording after each invalidation)", st.ReuseMisses)
	}
	if st.ReuseHits == 0 {
		t.Fatal("expected hits between invalidations")
	}
}
