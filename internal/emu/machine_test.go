package emu

import (
	"testing"

	"ccr/internal/ir"
)

// buildSumLoop builds: main(n) { s=0; for i=0..n-1 { s += A[i] }; return s }
func buildSumLoop(t testing.TB, vals []int64) *ir.Program {
	t.Helper()
	pb := ir.NewProgramBuilder("sumloop")
	arr := pb.ReadOnlyObject("A", vals)
	f := pb.Func("main", 1)
	n := f.Param(0)
	entry := f.NewBlock()
	loop := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	s, i, base, addr, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.MovI(s, 0)
	entry.MovI(i, 0)
	entry.Lea(base, arr, 0)
	loop.Bge(i, n, exit.ID())
	body.Add(addr, base, i)
	body.Ld(v, addr, 0, arr)
	body.Add(s, s, v)
	body.AddI(i, i, 1)
	body.Jmp(loop.ID())
	exit.Ret(s)
	p := pb.Build()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

func TestSumLoop(t *testing.T) {
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	p := buildSumLoop(t, vals)
	m := New(p)
	got, err := m.Run(int64(len(vals)))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var want int64
	for _, v := range vals {
		want += v
	}
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if m.Stats.DynInstrs == 0 || m.Stats.Branches == 0 {
		t.Fatalf("stats not collected: %+v", m.Stats)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		op   ir.Opcode
		a, b int64
		want int64
	}{
		{ir.Add, 7, 5, 12},
		{ir.Sub, 7, 5, 2},
		{ir.Mul, -3, 5, -15},
		{ir.Div, 17, 5, 3},
		{ir.Div, 17, 0, 0},
		{ir.Div, -17, 5, -3},
		{ir.Rem, 17, 5, 2},
		{ir.Rem, 17, 0, 0},
		{ir.And, 0b1100, 0b1010, 0b1000},
		{ir.Or, 0b1100, 0b1010, 0b1110},
		{ir.Xor, 0b1100, 0b1010, 0b0110},
		{ir.Shl, 3, 4, 48},
		{ir.Shr, -1, 60, 15},
		{ir.Sra, -16, 2, -4},
		{ir.Slt, 3, 4, 1},
		{ir.Slt, 4, 3, 0},
		{ir.Sle, 4, 4, 1},
		{ir.Seq, 5, 5, 1},
		{ir.Sne, 5, 5, 0},
	}
	for _, tc := range cases {
		pb := ir.NewProgramBuilder("arith")
		f := pb.Func("main", 2)
		b := f.NewBlock()
		d := f.NewReg()
		b.Emit(ir.Instr{Op: tc.op, Dest: d, Src1: f.Param(0), Src2: f.Param(1)})
		b.Ret(d)
		p := pb.Build()
		if err := ir.Verify(p); err != nil {
			t.Fatalf("%v: verify: %v", tc.op, err)
		}
		got, err := New(p).Run(tc.a, tc.b)
		if err != nil {
			t.Fatalf("%v: run: %v", tc.op, err)
		}
		if got != tc.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCallAndReturn(t *testing.T) {
	pb := ir.NewProgramBuilder("call")
	// callee(a, b) = a*2 + b
	g := pb.Func("double_add", 2)
	gb := g.NewBlock()
	tmp := g.NewReg()
	gb.ShlI(tmp, g.Param(0), 1)
	gb.Add(tmp, tmp, g.Param(1))
	gb.Ret(tmp)
	// main(x) = double_add(x, 7) + double_add(x, 1)
	f := pb.Func("main", 1)
	fb := f.NewBlock()
	r1, r2, c := f.NewReg(), f.NewReg(), f.NewReg()
	fb.MovI(c, 7)
	fb.Call(r1, g.ID(), f.Param(0), c)
	fb.MovI(c, 1)
	fb.Call(r2, g.ID(), f.Param(0), c)
	fb.Add(r1, r1, r2)
	fb.Ret(r1)
	p := pb.Build()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	got, err := New(p).Run(10)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := int64(2*10 + 7 + 2*10 + 1); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestStoreAndLoad(t *testing.T) {
	pb := ir.NewProgramBuilder("mem")
	buf := pb.Object("buf", 16, nil)
	f := pb.Func("main", 1)
	b := f.NewBlock()
	base, v := f.NewReg(), f.NewReg()
	b.Lea(base, buf, 3)
	b.St(base, 0, f.Param(0), buf)
	b.Ld(v, base, 0, buf)
	b.AddI(v, v, 100)
	b.Ret(v)
	p := pb.Build()
	got, err := New(p).Run(42)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 142 {
		t.Fatalf("got %d, want 142", got)
	}
}

func TestLoadFault(t *testing.T) {
	pb := ir.NewProgramBuilder("fault")
	pb.Object("buf", 4, nil)
	f := pb.Func("main", 0)
	b := f.NewBlock()
	a, v := f.NewReg(), f.NewReg()
	b.MovI(a, 1_000_000)
	b.Ld(v, a, 0, ir.NoMem)
	b.Ret(v)
	p := pb.Build()
	_, err := New(p).Run()
	if err == nil {
		t.Fatal("expected fault for out-of-range load")
	}
	var fault *Fault
	if !errorsAs(err, &fault) {
		t.Fatalf("error %v is not a Fault", err)
	}
}

func errorsAs(err error, target **Fault) bool {
	f, ok := err.(*Fault)
	if ok {
		*target = f
	}
	return ok
}

func TestInstructionLimit(t *testing.T) {
	pb := ir.NewProgramBuilder("inf")
	f := pb.Func("main", 0)
	b := f.NewBlock()
	b.Jmp(b.ID())
	p := pb.Build()
	m := New(p)
	m.Limit = 1000
	_, err := m.Run()
	if err != ErrLimit {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if m.Stats.DynInstrs != 1000 {
		t.Fatalf("DynInstrs = %d, want 1000", m.Stats.DynInstrs)
	}
}

func TestTraceEvents(t *testing.T) {
	vals := []int64{1, 2, 3, 4}
	p := buildSumLoop(t, vals)
	m := New(p)
	var n int64
	var pcs []int64
	m.Trace = func(ev *Event) {
		n++
		pcs = append(pcs, ev.PC)
		if ev.Instr == nil || ev.Func == nil {
			t.Fatal("trace event missing instruction or function")
		}
	}
	if _, err := m.Run(int64(len(vals))); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != m.Stats.DynInstrs {
		t.Fatalf("traced %d events, executed %d instructions", n, m.Stats.DynInstrs)
	}
	for _, pc := range pcs {
		if pc%4 != 0 || pc < 0 || pc >= int64(p.TextLen*4) {
			t.Fatalf("bad PC %d", pc)
		}
	}
}
