// Package emu is the functional emulator for the CCR intermediate
// representation. It executes linked programs instruction by instruction,
// implements the architectural semantics of the CCR instruction-set
// extensions (reuse lookup, memoization mode, instance commit, and
// invalidation) against a Computation Reuse Buffer, and streams a dynamic
// instruction event to an optional tracer.
//
// Two execution engines share one architectural semantics:
//
//   - the predecoded engine (the default, engine.go) runs the flat
//     ir.DecodedProgram form — a single tight loop over a dense
//     instruction array with pre-resolved operand indices and flat-PC
//     branch targets, allocation-free on the no-tracer path;
//   - the block-structured interpreter (runInterp below) walks the CFG
//     form directly. It is retained as the reference implementation: the
//     differential gate (experiments.TestEngineDifferential, CI) checks
//     the two engines produce bit-identical internal/oracle digests —
//     trace checksums included — on every bench × dataset × swept config.
//
// Setting CCR_ENGINE=interp in the environment (or Machine.Interp)
// selects the interpreter, e.g. to re-run a whole -verify sweep on the
// reference engine.
//
// The emulator is the "emulation" half of the paper's emulation-driven
// simulation methodology: the timing model in internal/uarch consumes the
// event stream rather than re-deriving semantics.
package emu

import (
	"errors"
	"fmt"
	"os"

	"ccr/internal/crb"
	"ccr/internal/ir"
	"ccr/internal/reuse"
)

// ErrLimit is returned when a run exceeds its dynamic instruction budget.
var ErrLimit = errors.New("emu: dynamic instruction limit exceeded")

// Fault describes an architectural error in the emulated program.
type Fault struct {
	Func  string
	Block ir.BlockID
	Index int
	Msg   string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("emu: fault in %s b%d[%d]: %s", f.Func, f.Block, f.Index, f.Msg)
}

type frame struct {
	f       *ir.Func
	regs    []int64
	b       ir.BlockID
	idx     int
	retDest ir.Reg
}

// funcMemo is a pending function-level recording.
type funcMemo struct {
	region   *ir.Region
	depth    int // frame depth at the reuse instruction
	inputs   []crb.RegVal
	startDyn int64
}

// memo tracks an active memoization-mode recording (paper §3.2).
type memo struct {
	active  bool
	region  *ir.Region
	inputs  []crb.RegVal
	outputs []crb.RegVal
	// defined is a bitset over the function's register indices (the
	// registers written since the region was entered); it replaces a
	// map[ir.Reg]bool so memoization mode stays off the allocator.
	defined []uint64
	usesMem bool
	count   int
}

func (m *memo) reset(r *ir.Region, numRegs int) {
	m.active = true
	m.region = r
	m.inputs = m.inputs[:0]
	m.outputs = m.outputs[:0]
	words := numRegs>>6 + 1
	if cap(m.defined) < words {
		m.defined = make([]uint64, words)
	} else {
		m.defined = m.defined[:words]
		clear(m.defined)
	}
	m.usesMem = false
	m.count = 0
}

func (m *memo) isDefined(r ir.Reg) bool {
	return m.defined[uint32(r)>>6]&(1<<(uint32(r)&63)) != 0
}

func (m *memo) markDefined(r ir.Reg) {
	m.defined[uint32(r)>>6] |= 1 << (uint32(r) & 63)
}

// noteUse records a register consumed before definition as an instance
// input. It reports false when the input bank would overflow.
func (m *memo) noteUse(r ir.Reg, v int64) bool {
	if r == ir.NoReg || m.isDefined(r) {
		return true
	}
	for _, in := range m.inputs {
		if in.Reg == r {
			return true
		}
	}
	if len(m.inputs) >= ir.RegionBankSize {
		return false
	}
	m.inputs = append(m.inputs, crb.RegVal{Reg: r, Val: v})
	return true
}

// noteDef records a definition; live-out definitions update the output bank.
func (m *memo) noteDef(r ir.Reg, v int64, liveOut bool) bool {
	m.markDefined(r)
	if !liveOut {
		return true
	}
	for i := range m.outputs {
		if m.outputs[i].Reg == r {
			m.outputs[i].Val = v
			return true
		}
	}
	if len(m.outputs) >= ir.RegionBankSize {
		return false
	}
	m.outputs = append(m.outputs, crb.RegVal{Reg: r, Val: v})
	return true
}

// ReuseBuffer is the emulator's view of the Computation Reuse Buffer: the
// three architectural operations the CCR ISA extensions perform. *crb.CRB
// is the real hardware model; test harnesses (internal/chaos) substitute
// wrappers that inject faults between the emulator and the buffer.
type ReuseBuffer interface {
	// Lookup searches the region's computation entry for an instance whose
	// inputs match the current register values. regs is the executing
	// frame's register file, indexed by ir.Reg; it covers every register
	// an instance of the region can name, and implementations must not
	// retain or modify it.
	Lookup(region ir.RegionID, regs []int64) (*crb.Instance, bool)
	// Commit installs a freshly recorded instance, reporting whether it
	// was stored.
	Commit(region ir.RegionID, inst crb.Instance) bool
	// Invalidate discards the memory-dependent instances of every region
	// registered against object m.
	Invalidate(m ir.MemID) int
}

// TraceBuffer is the emulator's view of a dynamic trace memoization buffer
// (reuse.DTM): the second reuse scheme, which forms and replays
// straight-line runs at runtime with no compiler support. The engine calls
// it at every *landing* — a PC where control arrives by branch, jump,
// call, return or reuse transfer — and notifies it of every executed
// store. *reuse.DTM is the real backend; internal/chaos substitutes
// fault-injecting wrappers.
//
// The transparency contract a backend must honor (DESIGN.md §13): a hit
// returned by Lookup must write exactly the register values the replaced
// run would have computed from the current register file and memory, and
// NextPC must be the landing the run would have transferred to. The
// returned Trace may alias internal scratch and is only valid until the
// next call.
type TraceBuffer interface {
	// Lookup probes for a replayable trace headed at flat PC head of
	// function fn. regs is the executing frame's register file; the
	// backend must not retain or modify it.
	Lookup(fn ir.FuncID, head int32, regs []int64) (*reuse.Trace, bool)
	// Begin arms a recording of the run headed at head after a miss,
	// snapshotting its input values. Returns whether a recording was
	// armed (ineligible heads arm nothing).
	Begin(fn ir.FuncID, head int32, regs []int64) bool
	// Complete finishes the pending recording, if any, at the next
	// landing; the backend validates the landing against the recorded
	// run's static successors and reads the outputs from regs.
	Complete(fn ir.FuncID, landing int32, regs []int64) bool
	// Abort abandons the pending recording, if any (machine reset, fault
	// recovery).
	Abort()
	// Store reports one executed store to object m (ir.NoMem for unknown
	// provenance) — the invalidation channel. Returns the number of
	// traces killed.
	Store(m ir.MemID) int
}

// interpDefault selects the legacy block-structured interpreter for every
// new Machine when CCR_ENGINE=interp is set in the environment — the
// escape hatch for re-running a whole sweep on the reference engine
// without touching call sites.
var interpDefault = os.Getenv("CCR_ENGINE") == "interp"

// Machine executes one program. Construct with New, run with Run.
type Machine struct {
	Prog *ir.Program
	Mem  []int64
	// CRB enables the CCR architectural extensions; with a nil CRB, reuse
	// instructions always miss and nothing is memoized (the transformed
	// program then behaves exactly like the base program, with overhead).
	CRB ReuseBuffer
	// DTM enables dynamic trace memoization (the second reuse scheme):
	// when non-nil, both engines probe it at every control-transfer
	// landing and report every executed store to it. Attach a *reuse.DTM
	// (or a chaos wrapper); nil runs are bit-identical to pre-DTM builds.
	DTM TraceBuffer
	// Trace, when non-nil, receives every executed dynamic instruction.
	Trace Tracer
	// Limit bounds the number of dynamic instructions executed
	// (0 means the DefaultLimit).
	Limit int64
	// Interp selects the legacy block-structured interpreter instead of
	// the predecoded engine (differential testing; see the package
	// comment). Defaults to false unless CCR_ENGINE=interp is set.
	Interp bool
	// NoSpec disables the hot-region specialization tier for this machine
	// (the batch tier, fused superinstructions included, still runs). Set
	// before the first Run; CCR_SPEC=off disables it for every machine.
	NoSpec bool

	Stats Stats

	// dec is the shared predecoded form of Prog (built once per program,
	// cached on it).
	dec    *ir.DecodedProgram
	frames []frame  // interpreter call stack
	fframes []fframe // predecoded-engine call stack
	memo   memo
	// funcMemos is the stack of pending function-level recordings (§6
	// extension): each marker waits for the call made right after its
	// reuse instruction to return, then commits (args → result) to the
	// CRB. Markers match returns by frame depth (LIFO).
	funcMemos []funcMemo
	// addrBase[f][b] is the byte address of block b's first instruction
	// (interpreter only; built lazily on the first interpreted run).
	addrBase [][]int64
	// lastInval carries the current Inval instruction's instance fan-out
	// from the execute switch to the event emitted for it.
	lastInval int
	// regPool recycles register files across calls.
	regPool [][]int64
	// readOnly[m] caches object read-only flags for the memoization path.
	readOnly []bool
	// rstat is a flat RegionID-indexed cache over Stats.Regions, so the
	// reuse path never hashes a map key.
	rstat []*RegionStats
	// initMem is the pristine linked memory image, kept so Reset can
	// restore architectural state without reallocating.
	initMem []int64
	// entryCnt[f][pc] counts the batch loop's straight-line run entries at
	// flat PC pc of function f. Per-opcode and branch counts are
	// reconstructed from these at run exit (flushOpCounts), which is what
	// keeps the batch loop free of per-instruction statistics updates.
	entryCnt [][]int64
	// byCorr records instruction ranges that were pre-counted by a run
	// entry but never executed (a mid-run fault, or the sentinel slot);
	// flushOpCounts subtracts them.
	byCorr []opCorr
	// ev is the event value reused across every emitted instruction, so
	// attaching a tracer never forces a per-run heap allocation.
	ev Event
	// specs[f][pc] is the specialization bound at run-entry pc of
	// function f (nil inner slice: none); nil until the lazy bind on the
	// first fast run (see spec.go).
	specs [][]specSlot
	// dtmArmed mirrors whether the attached DTM has a recording pending:
	// the batch tier may skip a landing hook only when nothing is armed
	// and the landing head is statically ineligible (both Lookup and
	// Begin are then proven no-ops).
	dtmArmed bool
	// dtmElig[f][pc] caches the DTM's static head-eligibility predicate
	// (nil when the attached buffer doesn't expose one); dtmEligFor
	// remembers which buffer it was built for.
	dtmElig    [][]bool
	dtmEligFor TraceBuffer
}

// DefaultLimit is the dynamic-instruction budget applied when Machine.Limit
// is zero.
const DefaultLimit int64 = 2_000_000_000

// New prepares a machine for the linked program p with fresh memory.
func New(p *ir.Program) *Machine {
	m := &Machine{
		Prog:    p,
		Interp:  interpDefault,
		dec:     p.Decoded(),
		initMem: p.InitialMemory(),
	}
	m.Mem = append([]int64(nil), m.initMem...)
	m.readOnly = make([]bool, len(p.Objects))
	for _, o := range p.Objects {
		m.readOnly[o.ID] = o.ReadOnly
	}
	m.rstat = make([]*RegionStats, len(p.Regions))
	m.entryCnt = make([][]int64, len(m.dec.Funcs))
	for i, df := range m.dec.Funcs {
		m.entryCnt[i] = make([]int64, len(df.Code))
	}
	return m
}

// opCorr is a pre-counted-but-unexecuted instruction range [Lo, Hi] of
// function F; see Machine.byCorr.
type opCorr struct {
	F      ir.FuncID
	Lo, Hi int32
}

// flushOpCounts folds the batch loop's per-run entry counters into
// Stats.ByOp and Stats.Branches. Every execution that enters a run at pc
// executes exactly the instructions [pc, RunEnd[pc]], whose opcode and
// branch counts are precomputed per run head in the decoded form
// (ir.DecodedFunc.RunOps/RunBr) — one table fold per entered run replaces
// the old whole-text carry sweep; byCorr ranges then subtract the
// pre-counted tails of runs that faulted mid-way. Called on every path out
// of runFast, after which the counters are zero again.
func (m *Machine) flushOpCounts() {
	for fid, cnt := range m.entryCnt {
		df := m.dec.Funcs[fid]
		runOps := df.RunOps
		runBr := df.RunBr
		for pc, c := range cnt {
			if c == 0 {
				continue
			}
			cnt[pc] = 0
			for _, oc := range runOps[pc] {
				m.Stats.ByOp[oc.Op] += c * int64(oc.N)
			}
			m.Stats.Branches += c * int64(runBr[pc])
		}
	}
	for _, co := range m.byCorr {
		code := m.dec.Funcs[co.F].Code
		for pc := co.Lo; pc <= co.Hi; pc++ {
			op := code[pc].Op
			m.Stats.ByOp[op]--
			switch op {
			case ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt:
				m.Stats.Branches--
			}
		}
	}
	m.byCorr = m.byCorr[:0]
}

// ensureAddrBase builds the interpreter's per-block byte-address table on
// first use (the predecoded engine derives addresses from flat PCs).
func (m *Machine) ensureAddrBase() {
	if m.addrBase != nil {
		return
	}
	p := m.Prog
	m.addrBase = make([][]int64, len(p.Funcs))
	for _, f := range p.Funcs {
		bases := make([]int64, len(f.Blocks))
		for _, b := range f.Blocks {
			bases[b.ID] = f.InstrAddr(b.ID, 0)
		}
		m.addrBase[f.ID] = bases
	}
}

// regionStat returns the per-region stats row through the flat cache,
// falling back to the map for out-of-table IDs.
func (m *Machine) regionStat(id ir.RegionID) *RegionStats {
	if id >= 0 && int(id) < len(m.rstat) {
		if rs := m.rstat[id]; rs != nil {
			return rs
		}
		rs := m.Stats.region(id)
		m.rstat[id] = rs
		return rs
	}
	return m.Stats.region(id)
}

// Reset returns the machine to its pre-Run architectural state — pristine
// memory, empty call stack, zeroed statistics — while keeping every
// internal buffer (register pools, frame stacks, per-region stat entries)
// allocated for reuse, so repeated Reset+Run cycles on one machine are
// allocation-free in steady state. The attached CRB is external state and
// is deliberately left warm, matching the phased train/ref idiom.
func (m *Machine) Reset() {
	copy(m.Mem, m.initMem)
	for i := range m.frames {
		if m.frames[i].regs != nil {
			m.regPool = append(m.regPool, m.frames[i].regs)
			m.frames[i].regs = nil
		}
	}
	m.frames = m.frames[:0]
	for i := range m.fframes {
		if m.fframes[i].regs != nil {
			m.regPool = append(m.regPool, m.fframes[i].regs)
			m.fframes[i].regs = nil
		}
	}
	m.fframes = m.fframes[:0]
	m.funcMemos = m.funcMemos[:0]
	m.memo.active = false
	m.dtmArmed = false
	if m.DTM != nil {
		// Recorded traces are external warm state like the CRB; only the
		// in-flight recording must die with the aborted execution.
		m.DTM.Abort()
	}
	m.lastInval = 0
	m.byCorr = m.byCorr[:0]
	regions := m.Stats.Regions
	for _, rs := range regions {
		*rs = RegionStats{}
	}
	m.Stats = Stats{Regions: regions}
}

// newRegs draws a zeroed register file of the wanted size from the pool.
// The backing array is always at least ir.RegFileCap long so the batch
// engine can view it as a fixed-size array (only the first want words are
// zeroed — batch-decodable functions never index past their own NumRegs).
func (m *Machine) newRegs(want int) []int64 {
	alloc := want
	if alloc < ir.RegFileCap {
		alloc = ir.RegFileCap
	}
	var regs []int64
	if n := len(m.regPool); n > 0 {
		regs = m.regPool[n-1]
		m.regPool = m.regPool[:n-1]
	}
	if cap(regs) < alloc {
		return make([]int64, alloc)[:want]
	}
	regs = regs[:want]
	for i := range regs {
		regs[i] = 0
	}
	return regs
}

func (m *Machine) pushFrame(f *ir.Func, retDest ir.Reg) *frame {
	regs := m.newRegs(f.NumRegs + 1)
	m.frames = append(m.frames, frame{f: f, regs: regs, retDest: retDest})
	return &m.frames[len(m.frames)-1]
}

func (m *Machine) popFrame() {
	fr := &m.frames[len(m.frames)-1]
	m.regPool = append(m.regPool, fr.regs)
	fr.regs = nil
	m.frames = m.frames[:len(m.frames)-1]
}

// Run executes main with the given arguments and returns its result.
func (m *Machine) Run(args ...int64) (int64, error) {
	mainFn := m.Prog.Func(m.Prog.Main)
	if mainFn == nil {
		return 0, errors.New("emu: program has no main")
	}
	if len(args) != mainFn.NumParams {
		return 0, fmt.Errorf("emu: main wants %d args, got %d", mainFn.NumParams, len(args))
	}
	if m.Interp {
		return m.runInterp(mainFn, args)
	}
	return m.runFast(args)
}

// dtmEnter is the trace-memoization landing hook, shared verbatim by both
// engines (their flat PCs agree position-for-position — see engine.go's
// equivalence notes). At a landing it completes any pending recording,
// then chains lookups: every hit applies a trace's outputs, charges one
// dynamic instruction (so an infinite replay chain still terminates at
// the limit, exactly like executed instructions would), and moves pc to
// the trace's landing; the first miss arms a fresh recording and returns.
// Replayed instructions are never executed, so they emit no trace events,
// update no per-op histograms, and cost no cycles — the idealized
// zero-cycle reuse model, same as the CCR scheme's hit path.
// Stats.DynInstrs must be synced before calling and is current on return.
func (m *Machine) dtmEnter(df *ir.DecodedFunc, pc int, regs []int64, limit int64) (int, error) {
	d := m.DTM
	fn := df.Fn.ID
	if pc < 0 || pc >= len(df.Code)-1 {
		// The sentinel slot (or a corrupt PC): about to fault — nothing
		// to look up, and a pending recording must not commit here.
		d.Abort()
		m.dtmArmed = false
		return pc, nil
	}
	d.Complete(fn, int32(pc), regs)
	m.dtmArmed = false
	for {
		tr, ok := d.Lookup(fn, int32(pc), regs)
		if !ok {
			m.dtmArmed = d.Begin(fn, int32(pc), regs)
			return pc, nil
		}
		if m.Stats.DynInstrs >= limit {
			return pc, ErrLimit
		}
		for _, out := range tr.Outputs {
			regs[out.Reg] = out.Val
		}
		m.Stats.DynInstrs++
		m.Stats.DTMHits++
		m.Stats.DTMReusedInstrs += int64(tr.Len)
		pc = int(tr.NextPC)
		if pc < 0 || pc >= len(df.Code)-1 {
			// Backends never record sentinel landings; defensive only.
			d.Abort()
			return pc, nil
		}
	}
}

// headEligible is the optional TraceBuffer fast-path interface: a static
// per-(function, head) predicate that is false only when Lookup and Begin
// at that head are unconditionally no-ops (no stats, no state). The batch
// tier then skips the landing hook at such heads while no recording is
// pending. Chaos wrappers deliberately don't implement it, so injected
// runs keep the hook at every landing.
type headEligible interface {
	EligibleHead(fn ir.FuncID, head int32) bool
}

// ensureDTMElig (re)builds the per-PC eligibility cache for the attached
// trace buffer; a buffer without the fast-path interface leaves the cache
// nil, which disables hook skipping entirely.
func (m *Machine) ensureDTMElig() {
	d := m.DTM
	if m.dtmEligFor == d {
		return
	}
	m.dtmEligFor = d
	m.dtmElig = nil
	he, ok := d.(headEligible)
	if !ok {
		return
	}
	elig := make([][]bool, len(m.dec.Funcs))
	for fid, df := range m.dec.Funcs {
		e := make([]bool, len(df.Code))
		for pc := 0; pc < len(df.Code)-1; pc++ {
			e[pc] = he.EligibleHead(df.Fn.ID, int32(pc))
		}
		elig[fid] = e
	}
	m.dtmElig = elig
}

// dtmInterpEnter adapts dtmEnter to the interpreter's (block, index)
// coordinates: the flat landing PC is BlockPC[b]+idx (valid for
// one-past-block-end fall-through positions too, since blocks are laid
// out contiguously), and an advanced PC maps back through Meta. No-op
// while a region memoization is armed — the careful recording path owns
// execution then, exactly like the fast engine's gate.
func (m *Machine) dtmInterpEnter(limit int64) error {
	if m.memo.active {
		return nil
	}
	fr := &m.frames[len(m.frames)-1]
	df := m.dec.Funcs[fr.f.ID]
	if int(fr.b) >= len(df.BlockPC) {
		m.DTM.Abort()
		return nil
	}
	pc := int(df.BlockPC[fr.b]) + fr.idx
	npc, err := m.dtmEnter(df, pc, fr.regs, limit)
	if err != nil {
		return err
	}
	if npc != pc {
		mt := &df.Meta[npc]
		fr.b, fr.idx = mt.Block, int(mt.Index)
	}
	return nil
}

// runInterp is the legacy block-structured interpreter: the reference
// implementation the predecoded engine is differentially tested against.
func (m *Machine) runInterp(mainFn *ir.Func, args []int64) (int64, error) {
	m.ensureAddrBase()
	fr := m.pushFrame(mainFn, ir.NoReg)
	for i, a := range args {
		fr.regs[i+1] = a
	}
	limit := m.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}

	ev := &m.ev
	trace := m.Trace
	if m.DTM != nil {
		// Program entry is a landing too (the fast engine's tier dispatch
		// fires there before the first instruction).
		if err := m.dtmInterpEnter(limit); err != nil {
			return 0, err
		}
	}
	for len(m.frames) > 0 {
		fr := &m.frames[len(m.frames)-1]
		blk := fr.f.Blocks[fr.b]
		if fr.idx >= len(blk.Instrs) {
			// Fall through to the next block.
			fr.b++
			fr.idx = 0
			if int(fr.b) >= len(fr.f.Blocks) {
				return 0, &Fault{fr.f.Name, fr.b, 0, "fell off end of function"}
			}
			continue
		}
		in := &blk.Instrs[fr.idx]
		if m.Stats.DynInstrs >= limit {
			return 0, ErrLimit
		}
		m.Stats.DynInstrs++
		m.Stats.ByOp[in.Op]++

		regs := fr.regs
		var v1, v2, result, addr int64
		taken := false
		nextB, nextI := fr.b, fr.idx+1

		if in.Src1 != ir.NoReg {
			v1 = regs[in.Src1]
		}
		if in.Src2 != ir.NoReg {
			v2 = regs[in.Src2]
		} else {
			v2 = in.Imm
		}

		memoActive := m.memo.active
		if memoActive {
			// Record first-use inputs before any definition below.
			ok := true
			switch in.Op {
			case ir.Call:
				for _, a := range in.Args {
					ok = ok && m.memo.noteUse(a, regs[a])
				}
			default:
				if in.Src1 != ir.NoReg {
					ok = m.memo.noteUse(in.Src1, v1)
				}
				if ok && in.Src2 != ir.NoReg {
					ok = m.memo.noteUse(in.Src2, v2)
				}
			}
			if !ok {
				m.abortMemo()
				memoActive = false
			}
		}

		switch in.Op {
		case ir.Nop:
		case ir.Mov:
			result = v1
			regs[in.Dest] = result
		case ir.MovI:
			result = in.Imm
			regs[in.Dest] = result
		case ir.Lea:
			result = m.Prog.Objects[in.Mem].Base + in.Imm
			if in.Src1 != ir.NoReg {
				result += v1
			}
			regs[in.Dest] = result
		case ir.Add:
			result = v1 + v2
			regs[in.Dest] = result
		case ir.Sub:
			result = v1 - v2
			regs[in.Dest] = result
		case ir.Mul:
			result = v1 * v2
			regs[in.Dest] = result
		case ir.Div:
			if v2 != 0 {
				result = v1 / v2
			}
			regs[in.Dest] = result
		case ir.Rem:
			if v2 != 0 {
				result = v1 % v2
			}
			regs[in.Dest] = result
		case ir.And:
			result = v1 & v2
			regs[in.Dest] = result
		case ir.Or:
			result = v1 | v2
			regs[in.Dest] = result
		case ir.Xor:
			result = v1 ^ v2
			regs[in.Dest] = result
		case ir.Shl:
			result = v1 << (uint64(v2) & 63)
			regs[in.Dest] = result
		case ir.Shr:
			result = int64(uint64(v1) >> (uint64(v2) & 63))
			regs[in.Dest] = result
		case ir.Sra:
			result = v1 >> (uint64(v2) & 63)
			regs[in.Dest] = result
		case ir.Slt:
			result = b2i(v1 < v2)
			regs[in.Dest] = result
		case ir.Sle:
			result = b2i(v1 <= v2)
			regs[in.Dest] = result
		case ir.Seq:
			result = b2i(v1 == v2)
			regs[in.Dest] = result
		case ir.Sne:
			result = b2i(v1 != v2)
			regs[in.Dest] = result
		case ir.Ld:
			addr = v1 + in.Imm
			if addr < 0 || addr >= int64(len(m.Mem)) {
				return 0, &Fault{fr.f.Name, fr.b, fr.idx, fmt.Sprintf("load address %d out of range", addr)}
			}
			if in.Mem != ir.NoMem {
				if o := m.Prog.Objects[in.Mem]; addr < o.Base || addr >= o.Base+o.Size {
					return 0, &Fault{fr.f.Name, fr.b, fr.idx,
						fmt.Sprintf("load address %d outside hinted object %s [%d,%d)", addr, o.Name, o.Base, o.Base+o.Size)}
				}
			}
			result = m.Mem[addr]
			regs[in.Dest] = result
			if memoActive {
				// Loads of writable objects make the instance depend on
				// memory state; static (read-only) data needs no
				// validation. A load with unknown provenance cannot be
				// inside a compiler-formed region — abort defensively.
				switch {
				case in.Mem == ir.NoMem:
					m.abortMemo()
					memoActive = false
				case !m.readOnly[in.Mem]:
					m.memo.usesMem = true
				}
			}
		case ir.St:
			addr = v1 + in.Imm
			if addr < 0 || addr >= int64(len(m.Mem)) {
				return 0, &Fault{fr.f.Name, fr.b, fr.idx, fmt.Sprintf("store address %d out of range", addr)}
			}
			if in.Mem != ir.NoMem {
				if o := m.Prog.Objects[in.Mem]; addr < o.Base || addr >= o.Base+o.Size {
					return 0, &Fault{fr.f.Name, fr.b, fr.idx,
						fmt.Sprintf("store address %d outside hinted object %s [%d,%d)", addr, o.Name, o.Base, o.Base+o.Size)}
				}
			}
			m.Mem[addr] = v2
			if m.DTM != nil {
				m.DTM.Store(in.Mem)
			}
			if memoActive {
				// Regions never contain stores; defensive abort.
				m.abortMemo()
				memoActive = false
			}
			if len(m.funcMemos) > 0 {
				// Pure-callee selection forbids this; never record a
				// result that observed a store.
				m.dropFuncMemos()
			}
		case ir.Jmp:
			taken = true
			nextB, nextI = in.Target, 0
		case ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt:
			switch in.Op {
			case ir.Beq:
				taken = v1 == v2
			case ir.Bne:
				taken = v1 != v2
			case ir.Blt:
				taken = v1 < v2
			case ir.Bge:
				taken = v1 >= v2
			case ir.Ble:
				taken = v1 <= v2
			case ir.Bgt:
				taken = v1 > v2
			}
			m.Stats.Branches++
			if taken {
				m.Stats.TakenBranches++
				nextB, nextI = in.Target, 0
			}
		case ir.Call:
			if memoActive {
				m.abortMemo()
				memoActive = false
			}
			callee := m.Prog.Func(in.Callee)
			origB, origIdx := fr.b, fr.idx
			fr.b, fr.idx = nextB, nextI // return point
			nf := m.pushFrame(callee, in.Dest)
			// fr may be stale after pushFrame (slice growth); reload.
			caller := &m.frames[len(m.frames)-2]
			for i, a := range in.Args {
				nf.regs[i+1] = caller.regs[a]
			}
			if trace != nil {
				m.emit(trace, ev, caller.f, origB, origIdx, in, v1, v2, 0, 0,
					true, m.addrBase[callee.ID][0])
			}
			if m.DTM != nil {
				if err := m.dtmInterpEnter(limit); err != nil {
					return 0, err
				}
			}
			continue
		case ir.Ret:
			if memoActive {
				m.abortMemo()
				memoActive = false
			}
			retVal := in.Imm
			if in.Src1 != ir.NoReg {
				retVal = v1
			}
			if trace != nil {
				tpc := int64(0)
				if len(m.frames) > 1 {
					p := &m.frames[len(m.frames)-2]
					tpc = m.pcOf(p.f, p.b, p.idx)
				}
				m.emit(trace, ev, fr.f, blk.ID, fr.idx, in, v1, v2, 0, retVal, true, tpc)
			}
			dest := fr.retDest
			m.popFrame()
			if len(m.funcMemos) > 0 {
				m.commitFuncMemos(retVal, len(m.frames))
			}
			if len(m.frames) == 0 {
				return retVal, nil
			}
			if dest != ir.NoReg {
				m.frames[len(m.frames)-1].regs[dest] = retVal
			}
			if m.DTM != nil {
				if err := m.dtmInterpEnter(limit); err != nil {
					return 0, err
				}
			}
			continue
		case ir.Reuse:
			hit, rin, rout, reused := m.execReuse(in.Region, regs, fr.f.NumRegs, len(m.frames))
			taken = hit
			if hit {
				nextB, nextI = in.Target, 0
			}
			if trace != nil {
				tpc := m.addrBase[fr.f.ID][in.Target]
				if !hit {
					tpc = m.pcAfter(fr.f, fr.b, fr.idx)
				}
				pc := m.pcOf(fr.f, fr.b, fr.idx)
				*ev = Event{
					Func: fr.f, Block: fr.b, Index: fr.idx, Instr: in, PC: pc,
					Regs:  fr.regs,
					Taken: hit, TargetPC: tpc,
					ReuseHit: hit, ReuseIn: rin, ReuseOut: rout, ReusedInstrs: reused,
				}
				trace(ev)
			}
			fr.b, fr.idx = nextB, nextI
			if m.DTM != nil {
				if err := m.dtmInterpEnter(limit); err != nil {
					return 0, err
				}
			}
			continue
		case ir.Inval:
			m.Stats.Invalidations++
			m.lastInval = 0
			if m.CRB != nil {
				m.lastInval = m.CRB.Invalidate(in.Mem)
			}
			if memoActive {
				m.abortMemo()
				memoActive = false
			}
			if len(m.funcMemos) > 0 {
				m.dropFuncMemos()
			}
		default:
			return 0, &Fault{fr.f.Name, fr.b, fr.idx, fmt.Sprintf("invalid opcode %d", in.Op)}
		}

		if memoActive {
			m.memoStep(fr.f, in, result, nextB, nextI)
		}

		if trace != nil {
			tpc := int64(0)
			if in.Op.IsBranch() {
				tpc = m.pcOf(fr.f, nextB, nextI)
			}
			m.emit(trace, ev, fr.f, fr.b, fr.idx, in, v1, v2, addr, result, taken, tpc)
		}
		fr.b, fr.idx = nextB, nextI
		if m.DTM != nil && in.Op.IsBranch() {
			// Jumps and conditional branches (either direction) end a
			// straight-line run: their successor is a landing.
			if err := m.dtmInterpEnter(limit); err != nil {
				return 0, err
			}
		}
	}
	return 0, errors.New("emu: no frames")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) pcOf(f *ir.Func, b ir.BlockID, idx int) int64 {
	if int(b) >= len(m.addrBase[f.ID]) {
		return 0
	}
	return m.addrBase[f.ID][b] + int64(idx)*4
}

// pcAfter returns the address of the instruction after (b, idx), following
// fall-through.
func (m *Machine) pcAfter(f *ir.Func, b ir.BlockID, idx int) int64 {
	return m.pcOf(f, b, idx) + 4
}

func (m *Machine) emit(trace Tracer, ev *Event, f *ir.Func, b ir.BlockID, idx int,
	in *ir.Instr, v1, v2, addr, result int64, taken bool, tpc int64) {
	*ev = Event{
		Func: f, Block: b, Index: idx, Instr: in,
		PC:   m.pcOf(f, b, idx),
		Regs: m.frames[len(m.frames)-1].regs,
		Val1: v1, Val2: v2, Addr: addr, Result: result,
		Taken: taken, TargetPC: tpc,
	}
	if in.Op == ir.Inval {
		ev.InvalCount = m.lastInval
	}
	trace(ev)
}

// execReuse implements the reuse instruction: CRB lookup, architectural
// update on a hit, or entry into memoization mode on a miss. Function-
// level regions record through a pending-call marker instead of the
// region memoization mode. regs is the executing frame's register file,
// numRegs its function's register count, and depth the current call-stack
// depth (for function-level markers). Shared by both engines.
func (m *Machine) execReuse(id ir.RegionID, regs []int64, numRegs, depth int) (hit bool, rin, rout, reused int) {
	region := m.Prog.Region(id)
	rs := m.regionStat(id)
	if m.memo.active {
		// Control reached another region's inception while memoizing;
		// regions are disjoint so this means an unannotated escape.
		m.abortMemo()
	}
	if m.CRB == nil {
		m.Stats.ReuseMisses++
		rs.Misses++
		return false, 0, 0, 0
	}
	ci, ok := m.CRB.Lookup(id, regs)
	if ok {
		for _, out := range ci.Outputs {
			regs[out.Reg] = out.Val
		}
		m.Stats.ReuseHits++
		m.Stats.ReusedInstrs += int64(ci.ReplacedInstrs)
		rs.Hits++
		rs.ReusedInstrs += int64(ci.ReplacedInstrs)
		return true, len(ci.Inputs), len(ci.Outputs), ci.ReplacedInstrs
	}
	m.Stats.ReuseMisses++
	rs.Misses++
	if region.Kind == ir.FuncLevel {
		fm := funcMemo{
			region:   region,
			depth:    depth,
			startDyn: m.Stats.DynInstrs,
		}
		fm.inputs = make([]crb.RegVal, len(region.Inputs))
		for i, r := range region.Inputs {
			fm.inputs[i] = crb.RegVal{Reg: r, Val: regs[r]}
		}
		m.funcMemos = append(m.funcMemos, fm)
		return false, 0, 0, 0
	}
	m.memo.reset(region, numRegs)
	return false, 0, 0, 0
}

// commitFuncMemos commits any pending function-level recording whose call
// has just returned (the frame stack is back at the marker's depth).
func (m *Machine) commitFuncMemos(retVal int64, depth int) {
	for len(m.funcMemos) > 0 {
		fm := &m.funcMemos[len(m.funcMemos)-1]
		if depth != fm.depth {
			return
		}
		rs := m.regionStat(fm.region.ID)
		inst := crb.Instance{
			UsesMem:        len(fm.region.MemObjects) > 0,
			Inputs:         append([]crb.RegVal(nil), fm.inputs...),
			ReplacedInstrs: int(m.Stats.DynInstrs - fm.startDyn),
		}
		for _, out := range fm.region.Outputs {
			inst.Outputs = append(inst.Outputs, crb.RegVal{Reg: out, Val: retVal})
		}
		if m.CRB.Commit(fm.region.ID, inst) {
			rs.Records++
		}
		m.funcMemos = m.funcMemos[:len(m.funcMemos)-1]
	}
}

// dropFuncMemos abandons pending function-level recordings (defensive:
// selection guarantees pure callees, so stores should never occur while a
// marker is pending).
func (m *Machine) dropFuncMemos() {
	for i := range m.funcMemos {
		m.Stats.MemoAborts++
		m.regionStat(m.funcMemos[i].region.ID).Aborts++
	}
	m.funcMemos = m.funcMemos[:0]
}

// memoStep performs the per-instruction memoization bookkeeping after the
// instruction's architectural effects: definition recording, and commit or
// abort depending on where control flows next. (nextB, nextI) is the
// pre-normalized successor position: (Target, 0) for a taken branch, the
// same-block successor slot otherwise. Shared by both engines — the
// predecoded engine derives the pair from the instruction's CFG position,
// so the two engines take bit-identical commit/abort decisions.
func (m *Machine) memoStep(f *ir.Func, in *ir.Instr, result int64, nextB ir.BlockID, nextI int) {
	mm := &m.memo
	mm.count++
	if d := in.Def(); d != ir.NoReg {
		if !mm.noteDef(d, result, in.Attr.Has(AttrLiveOutAlias)) {
			m.abortMemo()
			return
		}
	}
	region := mm.region
	// Determine whether control stays inside the region.
	if int(nextB) >= len(f.Blocks) {
		m.abortMemo()
		return
	}
	nb := f.Blocks[nextB]
	var nextInstr *ir.Instr
	if nextI < len(nb.Instrs) {
		nextInstr = &nb.Instrs[nextI]
	} else {
		// Fall-through to the next block's first instruction.
		if int(nextB)+1 < len(f.Blocks) && len(f.Blocks[nextB+1].Instrs) > 0 {
			nextInstr = &f.Blocks[nextB+1].Instrs[0]
			nextB, nextI = nextB+1, 0
		}
	}
	if nextInstr != nil && nextInstr.Region == region.ID && nextInstr.Op != ir.Reuse {
		return // still inside the region
	}
	// Control is leaving the region: commit at a marked finish point
	// flowing to the continuation, abort on any other escape.
	if in.Attr.Has(AttrRegionEndAlias) && nextB == region.Continuation && nextI == 0 {
		m.commitMemo()
		return
	}
	m.abortMemo()
}

// Attribute aliases keep the hot loop free of package-qualified constants.
const (
	AttrLiveOutAlias   = ir.AttrLiveOut
	AttrRegionEndAlias = ir.AttrRegionEnd
)

func (m *Machine) commitMemo() {
	mm := &m.memo
	rs := m.regionStat(mm.region.ID)
	// One backing array for both banks: the CRB retains the slices, so
	// they must be freshly owned, but they never need to grow.
	bank := make([]crb.RegVal, len(mm.inputs)+len(mm.outputs))
	inst := crb.Instance{
		UsesMem:        mm.usesMem,
		Inputs:         bank[:len(mm.inputs):len(mm.inputs)],
		Outputs:        bank[len(mm.inputs):],
		ReplacedInstrs: mm.count,
	}
	copy(inst.Inputs, mm.inputs)
	copy(inst.Outputs, mm.outputs)
	if m.CRB.Commit(mm.region.ID, inst) {
		rs.Records++
	}
	mm.active = false
}

func (m *Machine) abortMemo() {
	if !m.memo.active {
		return
	}
	m.Stats.MemoAborts++
	m.regionStat(m.memo.region.ID).Aborts++
	m.memo.active = false
}
