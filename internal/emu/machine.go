// Package emu is the functional emulator for the CCR intermediate
// representation. It executes linked programs instruction by instruction,
// implements the architectural semantics of the CCR instruction-set
// extensions (reuse lookup, memoization mode, instance commit, and
// invalidation) against a Computation Reuse Buffer, and streams a dynamic
// instruction event to an optional tracer.
//
// The emulator is the "emulation" half of the paper's emulation-driven
// simulation methodology: the timing model in internal/uarch consumes the
// event stream rather than re-deriving semantics.
package emu

import (
	"errors"
	"fmt"

	"ccr/internal/crb"
	"ccr/internal/ir"
)

// ErrLimit is returned when a run exceeds its dynamic instruction budget.
var ErrLimit = errors.New("emu: dynamic instruction limit exceeded")

// Fault describes an architectural error in the emulated program.
type Fault struct {
	Func  string
	Block ir.BlockID
	Index int
	Msg   string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("emu: fault in %s b%d[%d]: %s", f.Func, f.Block, f.Index, f.Msg)
}

type frame struct {
	f       *ir.Func
	regs    []int64
	b       ir.BlockID
	idx     int
	retDest ir.Reg
}

// funcMemo is a pending function-level recording.
type funcMemo struct {
	region   *ir.Region
	depth    int // frame depth at the reuse instruction
	inputs   []crb.RegVal
	startDyn int64
}

// memo tracks an active memoization-mode recording (paper §3.2).
type memo struct {
	active  bool
	region  *ir.Region
	inputs  []crb.RegVal
	outputs []crb.RegVal
	defined map[ir.Reg]bool
	usesMem bool
	count   int
}

func (m *memo) reset(r *ir.Region) {
	m.active = true
	m.region = r
	m.inputs = m.inputs[:0]
	m.outputs = m.outputs[:0]
	if m.defined == nil {
		m.defined = make(map[ir.Reg]bool, 16)
	} else {
		clear(m.defined)
	}
	m.usesMem = false
	m.count = 0
}

// noteUse records a register consumed before definition as an instance
// input. It reports false when the input bank would overflow.
func (m *memo) noteUse(r ir.Reg, v int64) bool {
	if r == ir.NoReg || m.defined[r] {
		return true
	}
	for _, in := range m.inputs {
		if in.Reg == r {
			return true
		}
	}
	if len(m.inputs) >= ir.RegionBankSize {
		return false
	}
	m.inputs = append(m.inputs, crb.RegVal{Reg: r, Val: v})
	return true
}

// noteDef records a definition; live-out definitions update the output bank.
func (m *memo) noteDef(r ir.Reg, v int64, liveOut bool) bool {
	m.defined[r] = true
	if !liveOut {
		return true
	}
	for i := range m.outputs {
		if m.outputs[i].Reg == r {
			m.outputs[i].Val = v
			return true
		}
	}
	if len(m.outputs) >= ir.RegionBankSize {
		return false
	}
	m.outputs = append(m.outputs, crb.RegVal{Reg: r, Val: v})
	return true
}

// ReuseBuffer is the emulator's view of the Computation Reuse Buffer: the
// three architectural operations the CCR ISA extensions perform. *crb.CRB
// is the real hardware model; test harnesses (internal/chaos) substitute
// wrappers that inject faults between the emulator and the buffer.
type ReuseBuffer interface {
	// Lookup searches the region's computation entry for an instance whose
	// inputs match the current register values (supplied by read).
	Lookup(region ir.RegionID, read func(ir.Reg) int64) (*crb.Instance, bool)
	// Commit installs a freshly recorded instance, reporting whether it
	// was stored.
	Commit(region ir.RegionID, inst crb.Instance) bool
	// Invalidate discards the memory-dependent instances of every region
	// registered against object m.
	Invalidate(m ir.MemID) int
}

// Machine executes one program. Construct with New, run with Run.
type Machine struct {
	Prog *ir.Program
	Mem  []int64
	// CRB enables the CCR architectural extensions; with a nil CRB, reuse
	// instructions always miss and nothing is memoized (the transformed
	// program then behaves exactly like the base program, with overhead).
	CRB ReuseBuffer
	// Trace, when non-nil, receives every executed dynamic instruction.
	Trace Tracer
	// Limit bounds the number of dynamic instructions executed
	// (0 means the DefaultLimit).
	Limit int64

	Stats Stats

	frames []frame
	memo   memo
	// funcMemos is the stack of pending function-level recordings (§6
	// extension): each marker waits for the call made right after its
	// reuse instruction to return, then commits (args → result) to the
	// CRB. Markers match returns by frame depth (LIFO).
	funcMemos []funcMemo
	// addrBase[f][b] is the byte address of block b's first instruction.
	addrBase [][]int64
	// lastInval carries the current Inval instruction's instance fan-out
	// from the execute switch to the event emitted for it.
	lastInval int
	// regPool recycles register files across calls.
	regPool [][]int64
	// readOnly[m] caches object read-only flags for the memoization path.
	readOnly []bool
}

// DefaultLimit is the dynamic-instruction budget applied when Machine.Limit
// is zero.
const DefaultLimit int64 = 2_000_000_000

// New prepares a machine for the linked program p with fresh memory.
func New(p *ir.Program) *Machine {
	m := &Machine{
		Prog: p,
		Mem:  p.InitialMemory(),
	}
	m.readOnly = make([]bool, len(p.Objects))
	for _, o := range p.Objects {
		m.readOnly[o.ID] = o.ReadOnly
	}
	m.addrBase = make([][]int64, len(p.Funcs))
	for _, f := range p.Funcs {
		bases := make([]int64, len(f.Blocks))
		for _, b := range f.Blocks {
			bases[b.ID] = f.InstrAddr(b.ID, 0)
		}
		m.addrBase[f.ID] = bases
	}
	return m
}

func (m *Machine) pushFrame(f *ir.Func, retDest ir.Reg) *frame {
	var regs []int64
	want := f.NumRegs + 1
	if n := len(m.regPool); n > 0 {
		regs = m.regPool[n-1]
		m.regPool = m.regPool[:n-1]
	}
	if cap(regs) < want {
		regs = make([]int64, want)
	} else {
		regs = regs[:want]
		for i := range regs {
			regs[i] = 0
		}
	}
	m.frames = append(m.frames, frame{f: f, regs: regs, retDest: retDest})
	return &m.frames[len(m.frames)-1]
}

func (m *Machine) popFrame() {
	fr := &m.frames[len(m.frames)-1]
	m.regPool = append(m.regPool, fr.regs)
	fr.regs = nil
	m.frames = m.frames[:len(m.frames)-1]
}

// Run executes main with the given arguments and returns its result.
func (m *Machine) Run(args ...int64) (int64, error) {
	mainFn := m.Prog.Func(m.Prog.Main)
	if mainFn == nil {
		return 0, errors.New("emu: program has no main")
	}
	if len(args) != mainFn.NumParams {
		return 0, fmt.Errorf("emu: main wants %d args, got %d", mainFn.NumParams, len(args))
	}
	fr := m.pushFrame(mainFn, ir.NoReg)
	for i, a := range args {
		fr.regs[i+1] = a
	}
	limit := m.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}

	var ev Event
	trace := m.Trace
	for len(m.frames) > 0 {
		fr := &m.frames[len(m.frames)-1]
		blk := fr.f.Blocks[fr.b]
		if fr.idx >= len(blk.Instrs) {
			// Fall through to the next block.
			fr.b++
			fr.idx = 0
			if int(fr.b) >= len(fr.f.Blocks) {
				return 0, &Fault{fr.f.Name, fr.b, 0, "fell off end of function"}
			}
			continue
		}
		in := &blk.Instrs[fr.idx]
		if m.Stats.DynInstrs >= limit {
			return 0, ErrLimit
		}
		m.Stats.DynInstrs++
		m.Stats.ByOp[in.Op]++

		regs := fr.regs
		var v1, v2, result, addr int64
		taken := false
		nextB, nextI := fr.b, fr.idx+1

		if in.Src1 != ir.NoReg {
			v1 = regs[in.Src1]
		}
		if in.Src2 != ir.NoReg {
			v2 = regs[in.Src2]
		} else {
			v2 = in.Imm
		}

		memoActive := m.memo.active
		if memoActive {
			// Record first-use inputs before any definition below.
			ok := true
			switch in.Op {
			case ir.Call:
				for _, a := range in.Args {
					ok = ok && m.memo.noteUse(a, regs[a])
				}
			default:
				if in.Src1 != ir.NoReg {
					ok = m.memo.noteUse(in.Src1, v1)
				}
				if ok && in.Src2 != ir.NoReg {
					ok = m.memo.noteUse(in.Src2, v2)
				}
			}
			if !ok {
				m.abortMemo()
				memoActive = false
			}
		}

		switch in.Op {
		case ir.Nop:
		case ir.Mov:
			result = v1
			regs[in.Dest] = result
		case ir.MovI:
			result = in.Imm
			regs[in.Dest] = result
		case ir.Lea:
			result = m.Prog.Objects[in.Mem].Base + in.Imm
			if in.Src1 != ir.NoReg {
				result += v1
			}
			regs[in.Dest] = result
		case ir.Add:
			result = v1 + v2
			regs[in.Dest] = result
		case ir.Sub:
			result = v1 - v2
			regs[in.Dest] = result
		case ir.Mul:
			result = v1 * v2
			regs[in.Dest] = result
		case ir.Div:
			if v2 != 0 {
				result = v1 / v2
			}
			regs[in.Dest] = result
		case ir.Rem:
			if v2 != 0 {
				result = v1 % v2
			}
			regs[in.Dest] = result
		case ir.And:
			result = v1 & v2
			regs[in.Dest] = result
		case ir.Or:
			result = v1 | v2
			regs[in.Dest] = result
		case ir.Xor:
			result = v1 ^ v2
			regs[in.Dest] = result
		case ir.Shl:
			result = v1 << (uint64(v2) & 63)
			regs[in.Dest] = result
		case ir.Shr:
			result = int64(uint64(v1) >> (uint64(v2) & 63))
			regs[in.Dest] = result
		case ir.Sra:
			result = v1 >> (uint64(v2) & 63)
			regs[in.Dest] = result
		case ir.Slt:
			result = b2i(v1 < v2)
			regs[in.Dest] = result
		case ir.Sle:
			result = b2i(v1 <= v2)
			regs[in.Dest] = result
		case ir.Seq:
			result = b2i(v1 == v2)
			regs[in.Dest] = result
		case ir.Sne:
			result = b2i(v1 != v2)
			regs[in.Dest] = result
		case ir.Ld:
			addr = v1 + in.Imm
			if addr < 0 || addr >= int64(len(m.Mem)) {
				return 0, &Fault{fr.f.Name, fr.b, fr.idx, fmt.Sprintf("load address %d out of range", addr)}
			}
			if in.Mem != ir.NoMem {
				if o := m.Prog.Objects[in.Mem]; addr < o.Base || addr >= o.Base+o.Size {
					return 0, &Fault{fr.f.Name, fr.b, fr.idx,
						fmt.Sprintf("load address %d outside hinted object %s [%d,%d)", addr, o.Name, o.Base, o.Base+o.Size)}
				}
			}
			result = m.Mem[addr]
			regs[in.Dest] = result
			if memoActive {
				// Loads of writable objects make the instance depend on
				// memory state; static (read-only) data needs no
				// validation. A load with unknown provenance cannot be
				// inside a compiler-formed region — abort defensively.
				switch {
				case in.Mem == ir.NoMem:
					m.abortMemo()
					memoActive = false
				case !m.readOnly[in.Mem]:
					m.memo.usesMem = true
				}
			}
		case ir.St:
			addr = v1 + in.Imm
			if addr < 0 || addr >= int64(len(m.Mem)) {
				return 0, &Fault{fr.f.Name, fr.b, fr.idx, fmt.Sprintf("store address %d out of range", addr)}
			}
			if in.Mem != ir.NoMem {
				if o := m.Prog.Objects[in.Mem]; addr < o.Base || addr >= o.Base+o.Size {
					return 0, &Fault{fr.f.Name, fr.b, fr.idx,
						fmt.Sprintf("store address %d outside hinted object %s [%d,%d)", addr, o.Name, o.Base, o.Base+o.Size)}
				}
			}
			m.Mem[addr] = v2
			if memoActive {
				// Regions never contain stores; defensive abort.
				m.abortMemo()
				memoActive = false
			}
			if len(m.funcMemos) > 0 {
				// Pure-callee selection forbids this; never record a
				// result that observed a store.
				m.dropFuncMemos()
			}
		case ir.Jmp:
			taken = true
			nextB, nextI = in.Target, 0
		case ir.Beq, ir.Bne, ir.Blt, ir.Bge, ir.Ble, ir.Bgt:
			switch in.Op {
			case ir.Beq:
				taken = v1 == v2
			case ir.Bne:
				taken = v1 != v2
			case ir.Blt:
				taken = v1 < v2
			case ir.Bge:
				taken = v1 >= v2
			case ir.Ble:
				taken = v1 <= v2
			case ir.Bgt:
				taken = v1 > v2
			}
			m.Stats.Branches++
			if taken {
				m.Stats.TakenBranches++
				nextB, nextI = in.Target, 0
			}
		case ir.Call:
			if memoActive {
				m.abortMemo()
				memoActive = false
			}
			callee := m.Prog.Func(in.Callee)
			origB, origIdx := fr.b, fr.idx
			fr.b, fr.idx = nextB, nextI // return point
			nf := m.pushFrame(callee, in.Dest)
			// fr may be stale after pushFrame (slice growth); reload.
			caller := &m.frames[len(m.frames)-2]
			for i, a := range in.Args {
				nf.regs[i+1] = caller.regs[a]
			}
			if trace != nil {
				m.emit(trace, &ev, caller.f, origB, origIdx, in, v1, v2, 0, 0,
					true, m.addrBase[callee.ID][0])
			}
			continue
		case ir.Ret:
			if memoActive {
				m.abortMemo()
				memoActive = false
			}
			retVal := in.Imm
			if in.Src1 != ir.NoReg {
				retVal = v1
			}
			if trace != nil {
				tpc := int64(0)
				if len(m.frames) > 1 {
					p := &m.frames[len(m.frames)-2]
					tpc = m.pcOf(p.f, p.b, p.idx)
				}
				m.emit(trace, &ev, fr.f, blk.ID, fr.idx, in, v1, v2, 0, retVal, true, tpc)
			}
			dest := fr.retDest
			m.popFrame()
			if len(m.funcMemos) > 0 {
				m.commitFuncMemos(retVal)
			}
			if len(m.frames) == 0 {
				return retVal, nil
			}
			if dest != ir.NoReg {
				m.frames[len(m.frames)-1].regs[dest] = retVal
			}
			continue
		case ir.Reuse:
			hit, rin, rout, reused := m.execReuse(in, fr)
			taken = hit
			if hit {
				nextB, nextI = in.Target, 0
			}
			if trace != nil {
				tpc := m.addrBase[fr.f.ID][in.Target]
				if !hit {
					tpc = m.pcAfter(fr.f, fr.b, fr.idx)
				}
				pc := m.pcOf(fr.f, fr.b, fr.idx)
				ev = Event{
					Func: fr.f, Block: fr.b, Index: fr.idx, Instr: in, PC: pc,
					Regs:  fr.regs,
					Taken: hit, TargetPC: tpc,
					ReuseHit: hit, ReuseIn: rin, ReuseOut: rout, ReusedInstrs: reused,
				}
				trace(&ev)
			}
			fr.b, fr.idx = nextB, nextI
			continue
		case ir.Inval:
			m.Stats.Invalidations++
			m.lastInval = 0
			if m.CRB != nil {
				m.lastInval = m.CRB.Invalidate(in.Mem)
			}
			if memoActive {
				m.abortMemo()
				memoActive = false
			}
			if len(m.funcMemos) > 0 {
				m.dropFuncMemos()
			}
		default:
			return 0, &Fault{fr.f.Name, fr.b, fr.idx, fmt.Sprintf("invalid opcode %d", in.Op)}
		}

		if memoActive {
			m.memoStep(in, result, fr, nextB, nextI)
		}

		if trace != nil {
			tpc := int64(0)
			if in.Op.IsBranch() {
				tpc = m.pcOf(fr.f, nextB, nextI)
			}
			m.emit(trace, &ev, fr.f, fr.b, fr.idx, in, v1, v2, addr, result, taken, tpc)
		}
		fr.b, fr.idx = nextB, nextI
	}
	return 0, errors.New("emu: no frames")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) pcOf(f *ir.Func, b ir.BlockID, idx int) int64 {
	if int(b) >= len(m.addrBase[f.ID]) {
		return 0
	}
	return m.addrBase[f.ID][b] + int64(idx)*4
}

// pcAfter returns the address of the instruction after (b, idx), following
// fall-through.
func (m *Machine) pcAfter(f *ir.Func, b ir.BlockID, idx int) int64 {
	return m.pcOf(f, b, idx) + 4
}

func (m *Machine) emit(trace Tracer, ev *Event, f *ir.Func, b ir.BlockID, idx int,
	in *ir.Instr, v1, v2, addr, result int64, taken bool, tpc int64) {
	*ev = Event{
		Func: f, Block: b, Index: idx, Instr: in,
		PC:   m.pcOf(f, b, idx),
		Regs: m.frames[len(m.frames)-1].regs,
		Val1: v1, Val2: v2, Addr: addr, Result: result,
		Taken: taken, TargetPC: tpc,
	}
	if in.Op == ir.Inval {
		ev.InvalCount = m.lastInval
	}
	trace(ev)
}

// execReuse implements the reuse instruction: CRB lookup, architectural
// update on a hit, or entry into memoization mode on a miss. Function-
// level regions record through a pending-call marker instead of the
// region memoization mode.
func (m *Machine) execReuse(in *ir.Instr, fr *frame) (hit bool, rin, rout, reused int) {
	region := m.Prog.Region(in.Region)
	rs := m.Stats.region(in.Region)
	if m.memo.active {
		// Control reached another region's inception while memoizing;
		// regions are disjoint so this means an unannotated escape.
		m.abortMemo()
	}
	if m.CRB == nil {
		m.Stats.ReuseMisses++
		rs.Misses++
		return false, 0, 0, 0
	}
	regs := fr.regs
	ci, ok := m.CRB.Lookup(in.Region, func(r ir.Reg) int64 { return regs[r] })
	if ok {
		for _, out := range ci.Outputs {
			regs[out.Reg] = out.Val
		}
		m.Stats.ReuseHits++
		m.Stats.ReusedInstrs += int64(ci.ReplacedInstrs)
		rs.Hits++
		rs.ReusedInstrs += int64(ci.ReplacedInstrs)
		return true, len(ci.Inputs), len(ci.Outputs), ci.ReplacedInstrs
	}
	m.Stats.ReuseMisses++
	rs.Misses++
	if region.Kind == ir.FuncLevel {
		fm := funcMemo{
			region:   region,
			depth:    len(m.frames),
			startDyn: m.Stats.DynInstrs,
		}
		fm.inputs = make([]crb.RegVal, len(region.Inputs))
		for i, r := range region.Inputs {
			fm.inputs[i] = crb.RegVal{Reg: r, Val: regs[r]}
		}
		m.funcMemos = append(m.funcMemos, fm)
		return false, 0, 0, 0
	}
	m.memo.reset(region)
	return false, 0, 0, 0
}

// commitFuncMemos commits any pending function-level recording whose call
// has just returned (the frame stack is back at the marker's depth).
func (m *Machine) commitFuncMemos(retVal int64) {
	for len(m.funcMemos) > 0 {
		fm := &m.funcMemos[len(m.funcMemos)-1]
		if len(m.frames) != fm.depth {
			return
		}
		rs := m.Stats.region(fm.region.ID)
		inst := crb.Instance{
			UsesMem:        len(fm.region.MemObjects) > 0,
			Inputs:         append([]crb.RegVal(nil), fm.inputs...),
			ReplacedInstrs: int(m.Stats.DynInstrs - fm.startDyn),
		}
		for _, out := range fm.region.Outputs {
			inst.Outputs = append(inst.Outputs, crb.RegVal{Reg: out, Val: retVal})
		}
		if m.CRB.Commit(fm.region.ID, inst) {
			rs.Records++
		}
		m.funcMemos = m.funcMemos[:len(m.funcMemos)-1]
	}
}

// dropFuncMemos abandons pending function-level recordings (defensive:
// selection guarantees pure callees, so stores should never occur while a
// marker is pending).
func (m *Machine) dropFuncMemos() {
	for i := range m.funcMemos {
		m.Stats.MemoAborts++
		m.Stats.region(m.funcMemos[i].region.ID).Aborts++
	}
	m.funcMemos = m.funcMemos[:0]
}

// memoStep performs the per-instruction memoization bookkeeping after the
// instruction's architectural effects: definition recording, and commit or
// abort depending on where control flows next.
func (m *Machine) memoStep(in *ir.Instr, result int64, fr *frame, nextB ir.BlockID, nextI int) {
	mm := &m.memo
	mm.count++
	if d := in.Def(); d != ir.NoReg {
		if !mm.noteDef(d, result, in.Attr.Has(AttrLiveOutAlias)) {
			m.abortMemo()
			return
		}
	}
	region := mm.region
	// Determine whether control stays inside the region.
	f := fr.f
	if int(nextB) >= len(f.Blocks) {
		m.abortMemo()
		return
	}
	nb := f.Blocks[nextB]
	var nextInstr *ir.Instr
	if nextI < len(nb.Instrs) {
		nextInstr = &nb.Instrs[nextI]
	} else {
		// Fall-through to the next block's first instruction.
		if int(nextB)+1 < len(f.Blocks) && len(f.Blocks[nextB+1].Instrs) > 0 {
			nextInstr = &f.Blocks[nextB+1].Instrs[0]
			nextB, nextI = nextB+1, 0
		}
	}
	if nextInstr != nil && nextInstr.Region == region.ID && nextInstr.Op != ir.Reuse {
		return // still inside the region
	}
	// Control is leaving the region: commit at a marked finish point
	// flowing to the continuation, abort on any other escape.
	if in.Attr.Has(AttrRegionEndAlias) && nextB == region.Continuation && nextI == 0 {
		m.commitMemo()
		return
	}
	m.abortMemo()
}

// Attribute aliases keep the hot loop free of package-qualified constants.
const (
	AttrLiveOutAlias   = ir.AttrLiveOut
	AttrRegionEndAlias = ir.AttrRegionEnd
)

func (m *Machine) commitMemo() {
	mm := &m.memo
	rs := m.Stats.region(mm.region.ID)
	inst := crb.Instance{
		UsesMem:        mm.usesMem,
		Inputs:         append([]crb.RegVal(nil), mm.inputs...),
		Outputs:        append([]crb.RegVal(nil), mm.outputs...),
		ReplacedInstrs: mm.count,
	}
	if m.CRB.Commit(mm.region.ID, inst) {
		rs.Records++
	}
	mm.active = false
}

func (m *Machine) abortMemo() {
	if !m.memo.active {
		return
	}
	m.Stats.MemoAborts++
	m.Stats.region(m.memo.region.ID).Aborts++
	m.memo.active = false
}
