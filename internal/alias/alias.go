// Package alias implements the program-level memory analysis the CCR
// compiler support requires (paper §4.1): a flow-insensitive,
// context-insensitive interprocedural points-to analysis over the program's
// named memory objects, classification of loads as "determinable"
// (all potential store sites known at compile time), and per-function
// may-store summaries used to place invalidation instructions.
package alias

import (
	"math/bits"
	"sort"

	"ccr/internal/ir"
)

// ObjSet is a may-point-to set over memory objects. Top means "may point to
// any object" (an address of unknown provenance, e.g. loaded from memory
// after a pointer escaped).
type ObjSet struct {
	Top  bool
	bits []uint64
}

func newObjSet(numObjs int) ObjSet {
	return ObjSet{bits: make([]uint64, (numObjs+64)/64+1)}
}

// Has reports whether object m is in the set (always true for Top).
func (s *ObjSet) Has(m ir.MemID) bool {
	if s.Top {
		return true
	}
	if m < 0 {
		return false
	}
	w := int(m) / 64
	return w < len(s.bits) && s.bits[w]&(1<<(uint(m)%64)) != 0
}

// Add inserts object m.
func (s *ObjSet) Add(m ir.MemID) {
	if m < 0 {
		return
	}
	s.bits[int(m)/64] |= 1 << (uint(m) % 64)
}

// Union merges t into s, reporting change.
func (s *ObjSet) Union(t *ObjSet) bool {
	changed := false
	if t.Top && !s.Top {
		s.Top = true
		changed = true
	}
	for i := range t.bits {
		old := s.bits[i]
		s.bits[i] |= t.bits[i]
		if s.bits[i] != old {
			changed = true
		}
	}
	return changed
}

// Count returns the number of objects in the set (0 for empty; callers
// must check Top separately).
func (s *ObjSet) Count() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members returns the object IDs in ascending order (nil for Top sets,
// whose membership is unbounded).
func (s *ObjSet) Members() []ir.MemID {
	if s.Top {
		return nil
	}
	var out []ir.MemID
	for wi, w := range s.bits {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ir.MemID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Single returns the unique object of a singleton, non-Top set, or NoMem.
func (s *ObjSet) Single() ir.MemID {
	if s.Top || s.Count() != 1 {
		return ir.NoMem
	}
	return s.Members()[0]
}

// Result is the outcome of the whole-program alias analysis.
type Result struct {
	prog *ir.Program

	// PointsTo[f][r] is the may-point-to set of register r in function f.
	PointsTo []map[ir.Reg]*ObjSet

	// LoadObject maps each load instruction to the unique object it
	// accesses, or NoMem when the object is not unique/known.
	LoadObject map[ir.InstrRef]ir.MemID

	// Determinable marks loads whose complete store-site set is known:
	// the accessed object is unique and no anonymous (Top-addressed)
	// store may write it.
	Determinable map[ir.InstrRef]bool

	// StoreSites[m] lists every store instruction that may write object m.
	StoreSites map[ir.MemID][]ir.InstrRef

	// AnonStores lists hintless stores whose target object set is Top —
	// these poison determinability of every writable object.
	AnonStores []ir.InstrRef

	// Inconsistent lists hinted accesses whose computed points-to set is
	// non-empty yet excludes the hint — a construction bug the emulator
	// would also catch dynamically.
	Inconsistent []ir.InstrRef

	// MayStore[f] is the set of objects function f may write, directly
	// or transitively through calls. AnonMayStore[f] reports whether f
	// may perform an anonymous store.
	MayStore     []ObjSet
	AnonMayStore []bool

	// MayLoad[f] is the set of objects function f may read, directly or
	// transitively; AnonMayLoad[f] reports reads of unknown objects.
	// These drive function-level region selection (§6 extension).
	MayLoad     []ObjSet
	AnonMayLoad []bool
}

// Analyze runs the points-to analysis over the whole program and derives
// load classification and store summaries.
func Analyze(p *ir.Program) *Result {
	nObjs := len(p.Objects)
	res := &Result{
		prog:         p,
		PointsTo:     make([]map[ir.Reg]*ObjSet, len(p.Funcs)),
		LoadObject:   map[ir.InstrRef]ir.MemID{},
		Determinable: map[ir.InstrRef]bool{},
		StoreSites:   map[ir.MemID][]ir.InstrRef{},
		MayStore:     make([]ObjSet, len(p.Funcs)),
		AnonMayStore: make([]bool, len(p.Funcs)),
		MayLoad:      make([]ObjSet, len(p.Funcs)),
		AnonMayLoad:  make([]bool, len(p.Funcs)),
	}
	for i := range res.PointsTo {
		res.PointsTo[i] = map[ir.Reg]*ObjSet{}
		res.MayStore[i] = newObjSet(nObjs)
		res.MayLoad[i] = newObjSet(nObjs)
	}
	get := func(f ir.FuncID, r ir.Reg) *ObjSet {
		s := res.PointsTo[f][r]
		if s == nil {
			ns := newObjSet(nObjs)
			s = &ns
			res.PointsTo[f][r] = s
		}
		return s
	}
	// ptsHeap[m] is the set of objects whose addresses may be stored in
	// object m (field-insensitive heap points-to): loads from m yield it.
	// globalHeap collects pointer values stored through unknown (Top)
	// addresses, which may land in any object; heapTop records a Top
	// pointer value reaching memory.
	ptsHeap := make([]ObjSet, nObjs)
	for i := range ptsHeap {
		ptsHeap[i] = newObjSet(nObjs)
	}
	globalHeap := newObjSet(nObjs)
	retSets := make([]*ObjSet, len(p.Funcs))
	for i := range retSets {
		ns := newObjSet(nObjs)
		retSets[i] = &ns
	}

	// Iterate transfer functions to a global fixpoint.
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					switch in.Op {
					case ir.Lea:
						d := get(f.ID, in.Dest)
						if !d.Has(in.Mem) {
							d.Add(in.Mem)
							changed = true
						}
						if in.Src1 != ir.NoReg {
							if d.Union(get(f.ID, in.Src1)) {
								changed = true
							}
						}
					case ir.Mov, ir.Add, ir.Sub:
						// Pointer arithmetic preserves provenance. Other
						// ALU operations (masks, shifts, multiplies)
						// strip it: the IR discipline is that addresses
						// are formed by Lea plus Add/Sub only, and the
						// emulator enforces every annotated access lands
						// inside its object.
						d := get(f.ID, in.Dest)
						if d.Union(get(f.ID, in.Src1)) {
							changed = true
						}
						if in.Src2 != ir.NoReg {
							if d.Union(get(f.ID, in.Src2)) {
								changed = true
							}
						}
					case ir.Ld:
						// The loaded value may be any pointer stored
						// into the accessed object(s).
						d := get(f.ID, in.Dest)
						addr := get(f.ID, in.Src1)
						if addr.Top {
							for m := range ptsHeap {
								if d.Union(&ptsHeap[m]) {
									changed = true
								}
							}
						} else {
							for _, m := range addr.Members() {
								if d.Union(&ptsHeap[m]) {
									changed = true
								}
							}
						}
						if d.Union(&globalHeap) {
							changed = true
						}
					case ir.St:
						v := get(f.ID, in.Src2)
						if !v.Top && v.Count() == 0 {
							break // pure data: nothing to record
						}
						addr := get(f.ID, in.Src1)
						if addr.Top {
							if globalHeap.Union(v) {
								changed = true
							}
						} else {
							for _, m := range addr.Members() {
								if ptsHeap[m].Union(v) {
									changed = true
								}
							}
						}
					case ir.Call:
						callee := p.Func(in.Callee)
						for ai, ar := range in.Args {
							param := get(in.Callee, ir.Reg(ai+1))
							if param.Union(get(f.ID, ar)) {
								changed = true
							}
						}
						if in.Dest != ir.NoReg {
							d := get(f.ID, in.Dest)
							if d.Union(retSets[callee.ID]) {
								changed = true
							}
						}
					case ir.Ret:
						if in.Src1 != ir.NoReg {
							if retSets[f.ID].Union(get(f.ID, in.Src1)) {
								changed = true
							}
						}
					}
				}
			}
		}
	}

	res.deriveLoadsAndStores(get)
	res.deriveMayStore()
	return res
}

// deriveLoadsAndStores resolves each access's object. Construction-time
// hints take precedence: the flow-insensitive analysis over-approximates
// under register reuse, whereas a hint is exact — every hinted access is
// bounds-checked against its object by the emulator at run time, so a wrong
// hint faults loudly rather than corrupting reuse. The computed sets still
// classify hintless accesses and cross-check hinted ones (Inconsistent).
func (res *Result) deriveLoadsAndStores(get func(ir.FuncID, ir.Reg) *ObjSet) {
	p := res.prog
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				ref := ir.InstrRef{Func: f.ID, Block: b.ID, Index: i}
				switch in.Op {
				case ir.Ld:
					addr := get(f.ID, in.Src1)
					if in.Mem != ir.NoMem {
						res.LoadObject[ref] = in.Mem
						if !addr.Top && !addr.Has(in.Mem) && addr.Count() > 0 {
							res.Inconsistent = append(res.Inconsistent, ref)
						}
						continue
					}
					res.LoadObject[ref] = addr.Single()
				case ir.St:
					if in.Mem != ir.NoMem {
						addr := get(f.ID, in.Src1)
						if !addr.Top && !addr.Has(in.Mem) && addr.Count() > 0 {
							res.Inconsistent = append(res.Inconsistent, ref)
						}
						res.StoreSites[in.Mem] = append(res.StoreSites[in.Mem], ref)
						continue
					}
					addr := get(f.ID, in.Src1)
					if addr.Top {
						res.AnonStores = append(res.AnonStores, ref)
						continue
					}
					for _, m := range addr.Members() {
						res.StoreSites[m] = append(res.StoreSites[m], ref)
					}
				}
			}
		}
	}
	anyAnon := len(res.AnonStores) > 0
	for ref, m := range res.LoadObject {
		if m == ir.NoMem {
			res.Determinable[ref] = false
			continue
		}
		obj := p.Object(m)
		// Read-only objects are always determinable. Writable objects
		// are determinable only when no anonymous store exists.
		res.Determinable[ref] = obj.ReadOnly || !anyAnon
	}
}

func (res *Result) deriveMayStore() {
	p := res.prog
	// Direct effects.
	for m, sites := range res.StoreSites {
		for _, ref := range sites {
			res.MayStore[ref.Func].Add(m)
		}
	}
	for _, ref := range res.AnonStores {
		res.AnonMayStore[ref.Func] = true
	}
	for ref, m := range res.LoadObject {
		if m == ir.NoMem {
			res.AnonMayLoad[ref.Func] = true
		} else {
			res.MayLoad[ref.Func].Add(m)
		}
	}
	// Transitive closure over the call graph.
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					in := &b.Instrs[i]
					if in.Op != ir.Call {
						continue
					}
					if res.MayStore[f.ID].Union(&res.MayStore[in.Callee]) {
						changed = true
					}
					if res.AnonMayStore[in.Callee] && !res.AnonMayStore[f.ID] {
						res.AnonMayStore[f.ID] = true
						changed = true
					}
					if res.MayLoad[f.ID].Union(&res.MayLoad[in.Callee]) {
						changed = true
					}
					if res.AnonMayLoad[in.Callee] && !res.AnonMayLoad[f.ID] {
						res.AnonMayLoad[f.ID] = true
						changed = true
					}
				}
			}
		}
	}
}

// Annotate writes the analysis results back into the IR: every load gets
// its object as the Mem hint (construction hints preserved, analysis
// results filled in for hintless loads) and the AttrDeterminable attribute
// when its store-site set is complete; hintless stores whose computed
// object is unique gain that hint. Returns the number of determinable
// loads.
func (res *Result) Annotate() int {
	p := res.prog
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				ref := ir.InstrRef{Func: f.ID, Block: b.ID, Index: i}
				switch in.Op {
				case ir.Ld:
					in.Mem = res.LoadObject[ref]
					if res.Determinable[ref] {
						in.Attr |= AttrDet
						n++
					} else {
						in.Attr &^= AttrDet
					}
				case ir.St:
					if in.Mem == ir.NoMem {
						in.Mem = storeSingle(res, ref)
					}
				}
			}
		}
	}
	return n
}

// AttrDet aliases ir.AttrDeterminable for brevity inside this package.
const AttrDet = ir.AttrDeterminable

func storeSingle(res *Result, ref ir.InstrRef) ir.MemID {
	found := ir.NoMem
	for m, sites := range res.StoreSites {
		for _, s := range sites {
			if s == ref {
				if found != ir.NoMem {
					return ir.NoMem // more than one object
				}
				found = m
			}
		}
	}
	return found
}

// StoreRefsSorted returns the store sites of object m in deterministic
// (func, block, index) order.
func (res *Result) StoreRefsSorted(m ir.MemID) []ir.InstrRef {
	sites := append([]ir.InstrRef(nil), res.StoreSites[m]...)
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		return a.Index < b.Index
	})
	return sites
}
