package alias

import (
	"testing"

	"ccr/internal/ir"
)

// buildHintless constructs a program whose loads/stores carry no hints, so
// the points-to analysis must resolve everything itself.
func buildHintless(t *testing.T) (*ir.Program, ir.MemID, ir.MemID) {
	t.Helper()
	pb := ir.NewProgramBuilder("alias")
	ro := pb.ReadOnlyObject("ro", []int64{1, 2, 3, 4})
	wr := pb.Object("wr", 8, nil)
	f := pb.Func("main", 1)
	b := f.NewBlock()
	pRO, pWR, idx, v, w := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b.AndI(idx, f.Param(0), 3)
	b.Lea(pRO, ro, 0)
	b.Add(pRO, pRO, idx)
	b.Ld(v, pRO, 0, ir.NoMem) // load from ro, no hint
	b.Lea(pWR, wr, 0)
	b.Add(pWR, pWR, idx)
	b.St(pWR, 0, v, ir.NoMem) // store to wr, no hint
	b.Ld(w, pWR, 0, ir.NoMem) // load back from wr
	b.Ret(w)
	return pb.Build(), ro, wr
}

func TestPointsToResolvesHintlessAccesses(t *testing.T) {
	p, ro, wr := buildHintless(t)
	res := Analyze(p)
	n := res.Annotate()
	if n != 2 {
		t.Fatalf("determinable loads = %d, want 2", n)
	}
	blk := p.Funcs[0].Blocks[0]
	if blk.Instrs[3].Mem != ro || !blk.Instrs[3].Attr.Has(ir.AttrDeterminable) {
		t.Fatalf("ro load annotation: %s", blk.Instrs[3].String())
	}
	if blk.Instrs[6].Mem != wr {
		t.Fatalf("wr store annotation: %s", blk.Instrs[6].String())
	}
	if blk.Instrs[7].Mem != wr || !blk.Instrs[7].Attr.Has(ir.AttrDeterminable) {
		t.Fatalf("wr load annotation: %s", blk.Instrs[7].String())
	}
	sites := res.StoreRefsSorted(wr)
	if len(sites) != 1 || sites[0].Index != 6 {
		t.Fatalf("store sites for wr: %v", sites)
	}
	if len(res.AnonStores) != 0 {
		t.Fatalf("unexpected anon stores: %v", res.AnonStores)
	}
}

func TestNonPointerOpsStripProvenance(t *testing.T) {
	pb := ir.NewProgramBuilder("strip")
	tab := pb.ReadOnlyObject("tab", []int64{1, 2})
	f := pb.Func("main", 0)
	b := f.NewBlock()
	p, q := f.NewReg(), f.NewReg()
	b.Lea(p, tab, 0)
	b.ShlI(q, p, 0) // shift strips provenance even when a no-op
	b.Ret(q)
	prog := pb.Build()
	res := Analyze(prog)
	pts := res.PointsTo[0][q]
	if pts != nil && (pts.Top || pts.Count() > 0) {
		t.Fatalf("shifted value kept provenance: %v", pts.Members())
	}
	if res.PointsTo[0][p].Single() != tab {
		t.Fatal("lea result must point to tab")
	}
}

func TestHeapPointsToThroughMemory(t *testing.T) {
	// A pointer stored into cell[0] and loaded back must carry its
	// provenance through the heap edge.
	pb := ir.NewProgramBuilder("heap")
	tab := pb.ReadOnlyObject("tab", []int64{9, 9})
	cell := pb.Object("cell", 2, nil)
	f := pb.Func("main", 0)
	b := f.NewBlock()
	pt, pc, lp, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	b.Lea(pt, tab, 0)
	b.Lea(pc, cell, 0)
	b.St(pc, 0, pt, cell)    // cell[0] = &tab
	b.Ld(lp, pc, 0, cell)    // lp = cell[0]
	b.Ld(v, lp, 0, ir.NoMem) // v = *lp — must resolve to tab
	b.Ret(v)
	prog := pb.Build()
	res := Analyze(prog)
	ref := ir.InstrRef{Func: 0, Block: 0, Index: 4}
	if got := res.LoadObject[ref]; got != tab {
		t.Fatalf("indirect load object = %d, want tab", got)
	}
}

func TestInterproceduralPropagation(t *testing.T) {
	pb := ir.NewProgramBuilder("ip")
	tab := pb.ReadOnlyObject("tab", []int64{5, 6, 7, 8})
	// callee(ptr) loads through the pointer parameter.
	g := pb.Func("deref", 1)
	gb := g.NewBlock()
	gv := g.NewReg()
	gb.Ld(gv, g.Param(0), 0, ir.NoMem)
	gb.Ret(gv)
	f := pb.Func("main", 0)
	pb.SetMain(f.ID())
	b := f.NewBlock()
	pr, r := f.NewReg(), f.NewReg()
	b.Lea(pr, tab, 0)
	b.Call(r, g.ID(), pr)
	b.Ret(r)
	prog := pb.Build()
	res := Analyze(prog)
	res.Annotate()
	in := prog.InstrAt(ir.InstrRef{Func: g.ID(), Block: 0, Index: 0})
	if in.Mem != tab || !in.Attr.Has(ir.AttrDeterminable) {
		t.Fatalf("callee load not resolved through parameter: %s", in.String())
	}
}

func TestMayStoreSummaries(t *testing.T) {
	pb := ir.NewProgramBuilder("ms")
	buf := pb.Object("buf", 4, nil)
	// leaf stores to buf.
	g := pb.Func("writer", 0)
	gb := g.NewBlock()
	gp, gz := g.NewReg(), g.NewReg()
	gb.Lea(gp, buf, 0)
	gb.MovI(gz, 1)
	gb.St(gp, 0, gz, buf)
	gb.RetI(0)
	// mid calls leaf.
	h := pb.Func("mid", 0)
	hb := h.NewBlock()
	hr := h.NewReg()
	hb.Call(hr, g.ID())
	hb.Ret(hr)
	f := pb.Func("main", 0)
	pb.SetMain(f.ID())
	b := f.NewBlock()
	r := f.NewReg()
	b.Call(r, h.ID())
	b.Ret(r)
	prog := pb.Build()
	res := Analyze(prog)
	for _, fn := range []ir.FuncID{g.ID(), h.ID(), f.ID()} {
		if !res.MayStore[fn].Has(buf) {
			t.Fatalf("f%d must may-store buf (transitively)", fn)
		}
	}
}

func TestHintTrustedAndCrossChecked(t *testing.T) {
	p, _, wr := buildHintless(t)
	// Add hints and re-analyze: hints must survive annotation.
	blk := p.Funcs[0].Blocks[0]
	blk.Instrs[6].Mem = wr
	res := Analyze(p)
	res.Annotate()
	if blk.Instrs[6].Mem != wr {
		t.Fatal("store hint must be preserved")
	}
	if len(res.Inconsistent) != 0 {
		t.Fatalf("consistent hint flagged: %v", res.Inconsistent)
	}
}

func TestObjSetOperations(t *testing.T) {
	s := newObjSet(100)
	s.Add(3)
	s.Add(70)
	if !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Fatal("membership")
	}
	if s.Count() != 2 || s.Single() != ir.NoMem {
		t.Fatal("count/single on non-singleton")
	}
	u := newObjSet(100)
	u.Add(3)
	if u.Single() != 3 {
		t.Fatal("singleton")
	}
	top := ObjSet{Top: true}
	if !top.Has(99) || top.Single() != ir.NoMem {
		t.Fatal("top semantics")
	}
	changed := s.Union(&top)
	if !changed || !s.Top {
		t.Fatal("union with top")
	}
}
