package experiments

import (
	"fmt"

	"ccr/internal/analysis"
	"ccr/internal/core"
	"ccr/internal/ir"
	"ccr/internal/reuse"
	"ccr/internal/stats"
	"ccr/internal/workloads"
)

// maxDecantDepth is the deepest loop-nesting bucket reported separately;
// contributions from deeper nests fold into the last bucket.
const maxDecantDepth = 3

// decantShapes labels the ByShape columns: compiler-formed acyclic and
// cyclic regions (the CCR mechanism) versus runtime straight-line traces
// (the DTM mechanism).
var decantShapes = [3]string{"region/acyclic", "region/cyclic", "trace"}

// DecantResult is the decanting lab: the CCR-vs-DTM-vs-both speedup
// ablation plus two decompositions of *what* each scheme eliminates —
// by opcode class and by the loop depth / mechanism shape of the code it
// short-circuits. The decompositions aggregate over the whole suite on
// training inputs.
type DecantResult struct {
	Ablation *AblationResult
	Schemes  []string
	// ByClass[si][c] is the suite-total dynamic instructions of class c
	// that scheme si eliminated relative to its reference run (the
	// transformed program without reuse hardware for CCR-bearing schemes,
	// the base program for pure DTM). Negative entries are overhead the
	// scheme added.
	ByClass [][ir.NumOpClasses]int64
	// ByDepth[si][d] is the dynamic instructions scheme si reused out of
	// code at loop depth d (d = maxDecantDepth folds deeper nests).
	ByDepth [][maxDecantDepth + 1]int64
	// ByShape[si] splits the same reused instructions by mechanism shape
	// per decantShapes.
	ByShape [][3]int64
}

// decantPoints is the scheme matrix of the decanting lab, built from the
// suite's configured CRB and trace-buffer geometries.
func decantPoints(s *Suite) []SweepPoint {
	return []SweepPoint{
		{Label: "ccr", Reuse: reuse.CCR(s.cfg.Opts.CRB)},
		{Label: "dtm", Reuse: reuse.DTMOnly(s.cfg.Opts.DTM)},
		{Label: "both", Reuse: reuse.Both(s.cfg.Opts.CRB, s.cfg.Opts.DTM)},
	}
}

// decantRef returns the reference run the decanting diff subtracts the
// scheme run from. CCR-bearing schemes run the transformed program, so
// their reference is the transformed program with no reuse hardware (the
// overhead run); the pure-runtime DTM scheme runs the base program, so its
// reference is the plain baseline.
func decantRef(s *Suite, b *workloads.Benchmark, rc reuse.Config) (*core.SimResult, error) {
	if rc.Scheme.UsesCCR() {
		return s.OverheadSim(b, b.Train)
	}
	return s.BaseSim(b, b.Train)
}

// loopDepths computes the loop-nesting depth of every block of f: the
// number of natural loops containing the block.
func loopDepths(f *ir.Func) []int {
	g := analysis.BuildCFG(f)
	loops := analysis.FindLoops(g, analysis.BuildDomTree(g))
	depth := make([]int, len(f.Blocks))
	for _, l := range loops {
		for _, b := range l.Blocks {
			depth[b]++
		}
	}
	return depth
}

// progDepths computes loopDepths for every function of prog.
func progDepths(prog *ir.Program) [][]int {
	out := make([][]int, len(prog.Funcs))
	for fi, f := range prog.Funcs {
		out[fi] = loopDepths(f)
	}
	return out
}

func depthBucket(d int) int {
	if d > maxDecantDepth {
		return maxDecantDepth
	}
	return d
}

// Decant runs the decanting ablation lab. The (benchmark × scheme) speedup
// cells fan out across the suite's worker pool; the decompositions then
// aggregate the cached simulation results in deterministic benchmark order,
// so the output is identical regardless of -jobs and of whether the cells
// were computed or loaded from a warm store. Failed cells degrade to FAILED
// ablation rows and drop out of the aggregates.
func Decant(s *Suite) (*DecantResult, error) {
	points := decantPoints(s)
	res := &DecantResult{
		Ablation: &AblationResult{Title: "Decant (a): CCR vs DTM vs both, training inputs"},
		ByClass:  make([][ir.NumOpClasses]int64, len(points)),
		ByDepth:  make([][maxDecantDepth + 1]int64, len(points)),
		ByShape:  make([][3]int64, len(points)),
	}
	for _, p := range points {
		res.Schemes = append(res.Schemes, p.Label)
		res.Ablation.Labels = append(res.Ablation.Labels, p.Label)
	}

	nb, np := len(s.Benches), len(points)
	rows := make([][]float64, nb)
	for i := range rows {
		rows[i] = make([]float64, np)
	}
	errs := s.MapErrs(nb*np,
		func(i int) string {
			return fmt.Sprintf("decant/%s/%s", s.Benches[i/np].Name, points[i%np].Label)
		},
		func(i int) error {
			b, pt := s.Benches[i/np], points[i%np]
			if _, err := decantRef(s, b, pt.Reuse); err != nil {
				return err
			}
			sp, err := s.SpeedupPoint(b, b.Train, pt.Reuse)
			if err != nil {
				return err
			}
			rows[i/np][i%np] = sp
			return nil
		})

	res.Ablation.Speedup = map[string][]float64{}
	sums := make([][]float64, np)
	for bi, b := range s.Benches {
		res.Ablation.Rows = append(res.Ablation.Rows, b.Name)
		res.Ablation.Speedup[b.Name] = rows[bi]
		for pi := range points {
			if err := errs[bi*np+pi]; err != nil {
				res.Ablation.Failed.set(b.Name, np, pi, err)
				continue
			}
			sums[pi] = append(sums[pi], rows[bi][pi])
		}
	}
	res.Ablation.Avg = make([]float64, np)
	for pi := range points {
		res.Ablation.Avg[pi] = stats.Mean(sums[pi])
	}

	// Decomposition pass: every fetch below is a cache (or store) hit for
	// cells that succeeded, so this sequential loop costs no simulation.
	depthCache := map[*ir.Program][][]int{}
	for si, pt := range points {
		for bi, b := range s.Benches {
			if errs[bi*np+si] != nil {
				continue
			}
			run, err := s.ReuseSim(b, b.Train, pt.Reuse)
			if err != nil {
				return nil, err
			}
			ref, err := decantRef(s, b, pt.Reuse)
			if err != nil {
				return nil, err
			}
			for op := range ref.Emu.ByOp {
				if d := ref.Emu.ByOp[op] - run.Emu.ByOp[op]; d != 0 {
					res.ByClass[si][ir.Opcode(op).Class()] += d
				}
			}
			prog, err := s.progFor(b, pt.Reuse)
			if err != nil {
				return nil, err
			}
			depths, ok := depthCache[prog]
			if !ok {
				depths = progDepths(prog)
				depthCache[prog] = depths
			}
			for rid, rs := range run.Emu.Regions {
				r := prog.Regions[rid]
				res.ByDepth[si][depthBucket(depths[r.Func][r.Body])] += rs.ReusedInstrs
				if r.Kind == ir.Cyclic {
					res.ByShape[si][1] += rs.ReusedInstrs
				} else {
					res.ByShape[si][0] += rs.ReusedInstrs
				}
			}
			dec := prog.Decoded()
			for _, hs := range run.DTMHeads {
				blk := dec.Funcs[hs.Fn].Meta[hs.PC].Block
				d := 0
				if int(blk) < len(depths[hs.Fn]) {
					d = depths[hs.Fn][blk]
				}
				res.ByDepth[si][depthBucket(d)] += hs.Reused
				res.ByShape[si][2] += hs.Reused
			}
		}
	}
	return res, nil
}

// Render formats the three decanting tables.
func (r *DecantResult) Render() string {
	out := r.Ablation.Render()

	tb := stats.Table{Header: append([]string{"opcode class"}, r.Schemes...)}
	for c := ir.OpClass(0); c < ir.NumOpClasses; c++ {
		cells := []string{c.String()}
		for si := range r.Schemes {
			cells = append(cells, fmt.Sprintf("%d", r.ByClass[si][c]))
		}
		tb.Add(cells...)
	}
	out += "\nDecant (b): eliminated dynamic instructions by opcode class (suite total)\n" + tb.String()

	td := stats.Table{Header: append([]string{"reused from"}, r.Schemes...)}
	for d := 0; d <= maxDecantDepth; d++ {
		label := fmt.Sprintf("loop depth %d", d)
		if d == maxDecantDepth {
			label += "+"
		}
		cells := []string{label}
		for si := range r.Schemes {
			cells = append(cells, fmt.Sprintf("%d", r.ByDepth[si][d]))
		}
		td.Add(cells...)
	}
	for shi, shape := range decantShapes {
		cells := []string{shape}
		for si := range r.Schemes {
			cells = append(cells, fmt.Sprintf("%d", r.ByShape[si][shi]))
		}
		td.Add(cells...)
	}
	out += "\nDecant (c): reused dynamic instructions by loop depth and mechanism shape\n" + td.String()
	return out
}
