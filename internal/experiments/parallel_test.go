package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"ccr/internal/runner"
	"ccr/internal/workloads"
)

func suiteWithJobs(jobs int) *Suite {
	cfg := DefaultConfig()
	cfg.Scale = workloads.Tiny
	cfg.Jobs = jobs
	return NewSuite(cfg)
}

// TestParallelMatchesSerial locks in the runner's determinism contract:
// a parallel figure run renders byte-identically to the serial (jobs=1)
// run, for every converted driver.
func TestParallelMatchesSerial(t *testing.T) {
	figures := []struct {
		name string
		run  func(*Suite) (string, error)
	}{
		{"figure4", func(s *Suite) (string, error) {
			r, err := Figure4(s)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"figure8a", func(s *Suite) (string, error) {
			r, err := Figure8a(s)
			if err != nil {
				return "", err
			}
			return r.Render("Figure 8(a)"), nil
		}},
		{"figure8b", func(s *Suite) (string, error) {
			r, err := Figure8b(s)
			if err != nil {
				return "", err
			}
			return r.Render("Figure 8(b)"), nil
		}},
		{"figure10", func(s *Suite) (string, error) {
			r, err := Figure10(s)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"figure11", func(s *Suite) (string, error) {
			r, err := Figure11(s)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ablation-assoc", func(s *Suite) (string, error) {
			r, err := AblationAssoc(s)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ablation-nomem", func(s *Suite) (string, error) {
			r, err := AblationNoMem(s)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
	serial, parallel := suiteWithJobs(1), suiteWithJobs(8)
	for _, fig := range figures {
		want, err := fig.run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", fig.name, err)
		}
		got, err := fig.run(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", fig.name, err)
		}
		if got != want {
			t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s--- parallel ---\n%s", fig.name, want, got)
		}
	}
}

// TestRunCellsErrorPropagation injects a failing cell and checks that the
// sweep completes, the error surfaces with the cell's ID, and healthy
// cells are unaffected.
func TestRunCellsErrorPropagation(t *testing.T) {
	s := suiteWithJobs(4)
	boom := errors.New("injected cell failure")
	var ran atomic.Int64
	cells := make([]runner.Cell, 6)
	for i := range cells {
		i := i
		cells[i] = runner.Cell{
			ID: fmt.Sprintf("cell-%d", i),
			Do: func(context.Context) error {
				ran.Add(1)
				if i == 2 {
					return boom
				}
				return nil
			},
		}
	}
	err := s.RunCells(cells)
	if !errors.Is(err, boom) {
		t.Fatalf("RunCells error = %v, want the injected failure", err)
	}
	if !strings.Contains(err.Error(), "cell-2") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
	if ran.Load() != int64(len(cells)) {
		t.Fatalf("only %d of %d cells ran: one failure must not abort the sweep", ran.Load(), len(cells))
	}
}

// TestCompileSingleFlight runs several figure drivers concurrently-capable
// and checks the compile cache proves one compilation per benchmark across
// the whole run — the cache-aware half of the tentpole.
func TestCompileSingleFlight(t *testing.T) {
	s := suiteWithJobs(8)
	if _, err := Figure8a(s); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure8b(s); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure10(s); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure11(s); err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	nb := int64(len(s.Benches))
	if st["compile"].Misses != nb {
		t.Fatalf("compile cache: %d misses, want exactly one per benchmark (%d)", st["compile"].Misses, nb)
	}
	if st["compile"].Hits == 0 {
		t.Fatal("compile cache never shared work across drivers")
	}
	// Baseline sims: one per (benchmark, input); Figures 8/10 use the
	// training input, Figure 11 adds the reference input.
	if st["base_sim"].Misses != 2*nb {
		t.Fatalf("base_sim cache: %d misses, want %d", st["base_sim"].Misses, 2*nb)
	}
	if st["prepare"].Misses != nb {
		t.Fatalf("prepare cache: %d misses, want %d", st["prepare"].Misses, nb)
	}
}

// TestSuiteManifest checks a suite run fills an attached manifest with
// cells, worker records and cache counters.
func TestSuiteManifest(t *testing.T) {
	s := suiteWithJobs(4)
	m := runner.NewManifest("experiments-test", s.Jobs())
	s.AttachManifest(m)
	if _, err := Figure8a(s); err != nil {
		t.Fatal(err)
	}
	s.FlushCacheStats(m)
	m.Finish()
	if len(m.Cells) != 3*len(s.Benches) {
		t.Fatalf("manifest cells = %d, want %d", len(m.Cells), 3*len(s.Benches))
	}
	for _, c := range m.Cells {
		if !strings.HasPrefix(c.ID, "sweep/") {
			t.Fatalf("cell id %q", c.ID)
		}
		if c.Error != "" {
			t.Fatalf("cell %s failed: %s", c.ID, c.Error)
		}
	}
	if m.Caches["compile"].Misses == 0 {
		t.Fatal("manifest missing cache stats")
	}
	var cells int
	for _, w := range m.Workers {
		cells += w.Cells
	}
	if cells != len(m.Cells) {
		t.Fatalf("worker cell counts (%d) disagree with cell records (%d)", cells, len(m.Cells))
	}
	if m.WallSeconds <= 0 {
		t.Fatal("manifest wall time not stamped")
	}
	if _, err := m.JSON(); err != nil {
		t.Fatal(err)
	}
}
