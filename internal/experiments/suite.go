// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic benchmark suite: the reuse-potential
// limit study (Figure 4), the CRB configuration sweeps (Figure 8), the
// computation-group distributions (Figure 9), the TOP-N reuse
// concentration (Figure 10), and the training/reference input comparison
// (Figure 11), plus the headline scalars quoted in the text.
package experiments

import (
	"fmt"

	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/potential"
	"ccr/internal/workloads"
)

// Config selects the workload scale and pipeline options for a full
// experiment run.
type Config struct {
	Scale workloads.Scale
	Opts  core.Options
}

// DefaultConfig runs the suite at Medium scale with the paper's settings.
func DefaultConfig() Config {
	return Config{Scale: workloads.Medium, Opts: core.DefaultOptions()}
}

// Suite caches per-benchmark compilation and simulation results so the
// figure drivers can share work: compilation and baseline timing do not
// depend on the CRB configuration.
type Suite struct {
	cfg     Config
	Benches []*workloads.Benchmark

	compiled map[string]*core.CompileResult
	baseSim  map[string]*core.SimResult // key: name|dataset
	ccrSim   map[string]*core.SimResult // key: name|dataset|crbcfg
	limit    map[string]potential.Result
}

// NewSuite loads every benchmark at the configured scale.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:      cfg,
		Benches:  workloads.All(cfg.Scale),
		compiled: map[string]*core.CompileResult{},
		baseSim:  map[string]*core.SimResult{},
		ccrSim:   map[string]*core.SimResult{},
		limit:    map[string]potential.Result{},
	}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// Compiled returns (building on demand) the CCR compilation of the named
// benchmark, profiled on its training input.
func (s *Suite) Compiled(b *workloads.Benchmark) (*core.CompileResult, error) {
	if cr, ok := s.compiled[b.Name]; ok {
		return cr, nil
	}
	cr, err := core.Compile(b.Prog, b.Train, s.cfg.Opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: compile %s: %w", b.Name, err)
	}
	s.compiled[b.Name] = cr
	return cr, nil
}

func dsKey(args []int64) string { return fmt.Sprintf("%v", args) }

// BaseSim returns the cached baseline timing run of b on args.
func (s *Suite) BaseSim(b *workloads.Benchmark, args []int64) (*core.SimResult, error) {
	key := b.Name + "|" + dsKey(args)
	if r, ok := s.baseSim[key]; ok {
		return r, nil
	}
	r, err := core.Simulate(b.Prog, nil, s.cfg.Opts.Uarch, args, s.cfg.Opts.Limit)
	if err != nil {
		return nil, fmt.Errorf("experiments: base sim %s: %w", b.Name, err)
	}
	s.baseSim[key] = r
	return r, nil
}

// CCRSim returns the cached CCR timing run of b on args with the given
// CRB configuration.
func (s *Suite) CCRSim(b *workloads.Benchmark, args []int64, cc crb.Config) (*core.SimResult, error) {
	key := fmt.Sprintf("%s|%s|%+v", b.Name, dsKey(args), cc)
	if r, ok := s.ccrSim[key]; ok {
		return r, nil
	}
	cr, err := s.Compiled(b)
	if err != nil {
		return nil, err
	}
	r, err := core.Simulate(cr.Prog, &cc, s.cfg.Opts.Uarch, args, s.cfg.Opts.Limit)
	if err != nil {
		return nil, fmt.Errorf("experiments: ccr sim %s: %w", b.Name, err)
	}
	s.ccrSim[key] = r
	return r, nil
}

// Limit returns the cached reuse-potential limit study of b on its
// training input (Figure 4 runs on the base binary).
func (s *Suite) Limit(b *workloads.Benchmark) (potential.Result, error) {
	return s.LimitFor(b, b.Train)
}

// LimitFor runs (and caches) the limit study for a specific input vector.
func (s *Suite) LimitFor(b *workloads.Benchmark, args []int64) (potential.Result, error) {
	key := b.Name + "|" + dsKey(args)
	if r, ok := s.limit[key]; ok {
		return r, nil
	}
	r, err := potential.Measure(b.Prog, args, s.cfg.Opts.Limit)
	if err != nil {
		return potential.Result{}, fmt.Errorf("experiments: limit study %s: %w", b.Name, err)
	}
	s.limit[key] = r
	return r, nil
}

// Speedup computes the paper's metric for b on args under CRB config cc.
func (s *Suite) Speedup(b *workloads.Benchmark, args []int64, cc crb.Config) (float64, error) {
	base, err := s.BaseSim(b, args)
	if err != nil {
		return 0, err
	}
	ccr, err := s.CCRSim(b, args, cc)
	if err != nil {
		return 0, err
	}
	if ccr.Result != base.Result {
		return 0, fmt.Errorf("experiments: %s: architectural mismatch (base %d, ccr %d)",
			b.Name, base.Result, ccr.Result)
	}
	return core.Speedup(base, ccr), nil
}
