// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic benchmark suite: the reuse-potential
// limit study (Figure 4), the CRB configuration sweeps (Figure 8), the
// computation-group distributions (Figure 9), the TOP-N reuse
// concentration (Figure 10), and the training/reference input comparison
// (Figure 11), plus the headline scalars quoted in the text.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"runtime"
	"sync/atomic"
	"time"

	"ccr/internal/alias"
	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/ir"
	"ccr/internal/oracle"
	"ccr/internal/potential"
	"ccr/internal/reuse"
	"ccr/internal/runner"
	"ccr/internal/store"
	"ccr/internal/telemetry"
	"ccr/internal/workloads"
)

// Config selects the workload scale and pipeline options for a full
// experiment run.
type Config struct {
	Scale workloads.Scale
	Opts  core.Options
	// Jobs is the worker count the parallel figure drivers fan their
	// simulation cells out on; <= 0 means one worker per GOMAXPROCS.
	Jobs int
	// CellTimeout bounds each simulation cell's wall time (0 = none);
	// Retries re-runs a failed cell up to N more times. Both map onto the
	// runner pool's failure-isolation controls.
	CellTimeout time.Duration
	Retries     int
	// Heartbeat, when positive, makes the suite's pool emit structured
	// progress logs at this interval during long sweeps.
	Heartbeat time.Duration
	// Telemetry attaches a cause-attributed telemetry sink to every CCR
	// simulation and embeds its per-cell summary in the attached manifest.
	Telemetry bool
	// Store, when non-nil, layers a content-addressed on-disk artifact
	// store under the single-flight caches: compilations, baseline and
	// CCR simulations, limit studies and base digests persist across
	// processes. Keys are content addresses — the prepared program's
	// dump digest plus a pipeline-options fingerprint plus the cell
	// coordinates — and the store itself enforces the build-revision
	// discipline, so a resumed sweep never trusts another build's
	// artifacts. Telemetry summaries are only embedded for cells that
	// were actually computed, not loaded.
	Store *store.Store
}

// DefaultConfig runs the suite at Medium scale with the paper's settings.
func DefaultConfig() Config {
	return Config{Scale: workloads.Medium, Opts: core.DefaultOptions()}
}

// Suite caches per-benchmark compilation and simulation results so the
// figure drivers can share work: compilation and baseline timing do not
// depend on the CRB configuration. All caches are thread-safe and
// single-flight, so concurrent figure drivers (and the cells of one
// parallel sweep) never recompute or duplicate a shared artifact.
type Suite struct {
	cfg     Config
	Benches []*workloads.Benchmark

	pool   runner.Pool
	failed atomic.Int64 // cells that failed across every fan-out

	prep     *runner.Cache // name → *alias.Result (the only b.Prog mutation)
	compiled *runner.Cache // name → *core.CompileResult
	baseSim  *runner.Cache // name|dataset → *core.SimResult
	ccrSim   *runner.Cache // name|dataset|reuse-key → *core.SimResult
	limit    *runner.Cache // name|dataset → potential.Result
	digest   *runner.Cache // name|dataset → oracle.Digest of the base run

	// progKey caches each benchmark's content address (the SHA-256 of the
	// prepared program dump) — the store-key prefix tying every persisted
	// artifact to the exact program bytes it was computed from.
	progKey *runner.Cache
	// optsKey fingerprints cfg.Opts; it joins every store key so two
	// suites with different pipeline options never alias artifacts.
	optsKey string
}

// NewSuite loads every benchmark at the configured scale.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:     cfg,
		Benches: workloads.All(cfg.Scale),
		pool: runner.Pool{Jobs: cfg.Jobs, CellTimeout: cfg.CellTimeout,
			Retries: cfg.Retries, Heartbeat: cfg.Heartbeat},
		prep:     runner.NewCache(),
		compiled: runner.NewCache(),
		baseSim:  runner.NewCache(),
		ccrSim:   runner.NewCache(),
		limit:    runner.NewCache(),
		digest:   runner.NewCache(),
		progKey:  runner.NewCache(),
		optsKey:  optsFingerprint(cfg.Opts),
	}
}

// optsFingerprint derives a short canonical digest of the pipeline
// options. core.Options is a tree of plain structs, so its JSON encoding
// is deterministic (fixed field order, no maps).
func optsFingerprint(opts core.Options) string {
	b, err := json.Marshal(opts)
	if err != nil {
		// Options are always marshalable; a failure here would alias
		// every configuration, so refuse loudly instead.
		panic(fmt.Sprintf("experiments: options fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// WithPool returns a view of s whose fan-outs run on the given pool but
// share every resident artifact with s: the benchmark programs (alias
// annotation included) and all six single-flight caches. The view has its
// own failed-cell counter and the pool its own manifest/heartbeat sink, so
// a long-running service can give each request private progress streaming
// and accounting while every request warms the same caches.
func (s *Suite) WithPool(pool runner.Pool) *Suite {
	return &Suite{
		cfg:     s.cfg,
		Benches: s.Benches,
		pool:    pool,
		prep:    s.prep, compiled: s.compiled, baseSim: s.baseSim,
		ccrSim: s.ccrSim, limit: s.limit, digest: s.digest,
		progKey: s.progKey, optsKey: s.optsKey,
	}
}

// Jobs returns the effective worker count of the suite's pool.
func (s *Suite) Jobs() int {
	if s.cfg.Jobs > 0 {
		return s.cfg.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// AttachManifest routes every subsequent RunCells fan-out into m; call
// FlushCacheStats when the run is over to record the cache counters too.
func (s *Suite) AttachManifest(m *runner.Manifest) { s.pool.Manifest = m }

// CacheStats reports the hit/miss counters of the shared artifact caches.
func (s *Suite) CacheStats() map[string]runner.CacheStats {
	return map[string]runner.CacheStats{
		"prepare":  s.prep.Stats(),
		"compile":  s.compiled.Stats(),
		"base_sim": s.baseSim.Stats(),
		"ccr_sim":  s.ccrSim.Stats(),
		"limit":    s.limit.Stats(),
		"digest":   s.digest.Stats(),
	}
}

// FlushCacheStats copies the current cache counters into m, along with
// the artifact store's outcome counters when a store is attached.
func (s *Suite) FlushCacheStats(m *runner.Manifest) {
	for name, st := range s.CacheStats() {
		m.SetCache(name, st)
	}
	if s.cfg.Store != nil {
		m.SetStore(s.cfg.Store.Stats())
	}
}

// Store returns the attached artifact store (nil when the suite is
// memory-only).
func (s *Suite) Store() *store.Store { return s.cfg.Store }

// progDigest returns (computing once per benchmark) b's content address:
// the SHA-256 of the prepared program's textual dump. It runs after
// prepared(b), so the digest covers the alias annotations too and the
// program is never dumped while being mutated.
func (s *Suite) progDigest(b *workloads.Benchmark) (string, error) {
	v, err := s.progKey.Do(b.Name, func() (any, error) {
		if _, err := s.prepared(b); err != nil {
			return nil, err
		}
		sum := sha256.Sum256([]byte(b.Prog.Dump()))
		return hex.EncodeToString(sum[:16]), nil
	})
	if err != nil {
		return "", err
	}
	return v.(string), nil
}

// storeKey assembles the full content address of one artifact: program
// digest, options fingerprint, then the cell coordinates.
func (s *Suite) storeKey(b *workloads.Benchmark, rest string) (string, error) {
	pd, err := s.progDigest(b)
	if err != nil {
		return "", err
	}
	return pd + "|" + s.optsKey + "|" + rest, nil
}

// fromStore loads a persisted artifact when a store is attached; any
// store-level read error degrades to a miss (the artifact is recomputed).
func (s *Suite) fromStore(kind, key string, out any) bool {
	if s.cfg.Store == nil || key == "" {
		return false
	}
	ok, err := s.cfg.Store.Get(kind, key, out)
	if err != nil {
		slog.Warn("experiments: store read failed; recomputing", "kind", kind, "err", err)
		return false
	}
	return ok
}

// toStore persists an artifact when a store is attached. Persistence is
// best-effort: a failed write only costs the durability of this one
// artifact, never the run.
func (s *Suite) toStore(kind, key string, v any) {
	if s.cfg.Store == nil || key == "" {
		return
	}
	if err := s.cfg.Store.Put(kind, key, v); err != nil {
		slog.Warn("experiments: store write failed", "kind", kind, "err", err)
	}
}

// runCells fans cells out across the suite's worker pool, counting
// failures toward FailedCells.
func (s *Suite) runCells(cells []runner.Cell) []runner.CellResult {
	results := s.pool.Run(context.Background(), cells)
	for i := range results {
		if results[i].Err != nil {
			s.failed.Add(1)
		}
	}
	return results
}

// RunCells fans cells out across the suite's worker pool and joins the
// per-cell errors in input order. A failing cell does not abort the sweep.
func (s *Suite) RunCells(cells []runner.Cell) error {
	return runner.Errs(s.runCells(cells))
}

// Map is the index-based fan-out the figure drivers use: it runs fn(i) for
// every i in [0, n) across the pool; id labels cell i in run manifests.
// fn must write its result to a distinct location per index — results then
// come out deterministic regardless of completion order.
func (s *Suite) Map(n int, id func(int) string, fn func(int) error) error {
	return errsJoin(s.MapErrs(n, id, fn))
}

// MapErrs is Map returning the per-index error vector: errs[i] is non-nil
// exactly when cell i failed (including recovered panics and timeouts).
// The figure drivers use it to degrade gracefully, rendering a failed
// cell as a FAILED row instead of aborting the whole figure.
func (s *Suite) MapErrs(n int, id func(int) string, fn func(int) error) []error {
	cells := make([]runner.Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = runner.Cell{ID: id(i), Do: func(context.Context) error { return fn(i) }}
	}
	results := s.runCells(cells)
	errs := make([]error, n)
	for i := range results {
		errs[i] = results[i].Err
	}
	return errs
}

// FailedCells reports how many cells have failed across every fan-out of
// this suite — the -strict exit condition.
func (s *Suite) FailedCells() int { return int(s.failed.Load()) }

// prepared returns (running once per benchmark) the alias analysis of b,
// annotating b.Prog in place. Every other suite entry point funnels
// through it first, so b.Prog is never mutated while another goroutine
// simulates it.
func (s *Suite) prepared(b *workloads.Benchmark) (*alias.Result, error) {
	v, err := s.prep.Do(b.Name, func() (any, error) {
		return core.Prepare(b.Prog), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*alias.Result), nil
}

// storedCompile is the persisted form of a compilation: the transformed
// program as its canonical textual dump (regions, annotations and data
// included — the round-trip the IR fuzz target guards) plus the training
// run's architectural result. Plans, profile and alias analysis are
// process-local working state and are not persisted; every suite consumer
// reads only Prog and TrainResult.
type storedCompile struct {
	Prog        string `json:"prog"`
	TrainResult int64  `json:"train_result"`
}

// Compiled returns (building on demand) the CCR compilation of the named
// benchmark, profiled on its training input. With a store attached the
// transformed program persists across processes; a persisted program that
// fails to re-parse degrades to a recompilation, never an error.
func (s *Suite) Compiled(b *workloads.Benchmark) (*core.CompileResult, error) {
	v, err := s.compiled.Do(b.Name, func() (any, error) {
		key, err := s.storeKey(b, "compile")
		if err != nil {
			return nil, err
		}
		var sc storedCompile
		if s.fromStore("compile", key, &sc) {
			prog, perr := ir.Parse(sc.Prog)
			if perr == nil {
				return &core.CompileResult{Prog: prog, TrainResult: sc.TrainResult}, nil
			}
			slog.Warn("experiments: persisted compile unparsable; recompiling",
				"bench", b.Name, "err", perr)
		}
		ar, err := s.prepared(b)
		if err != nil {
			return nil, err
		}
		cr, err := core.CompileWith(b.Prog, ar, b.Train, s.cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: compile %s: %w", b.Name, err)
		}
		s.toStore("compile", key, storedCompile{Prog: cr.Prog.Dump(), TrainResult: cr.TrainResult})
		return cr, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.CompileResult), nil
}

func dsKey(args []int64) string { return fmt.Sprintf("%v", args) }

// BaseSim returns the cached baseline timing run of b on args.
func (s *Suite) BaseSim(b *workloads.Benchmark, args []int64) (*core.SimResult, error) {
	v, err := s.baseSim.Do(b.Name+"|"+dsKey(args), func() (any, error) {
		key, err := s.storeKey(b, "ds="+dsKey(args))
		if err != nil {
			return nil, err
		}
		var cached core.SimResult
		if s.fromStore("base_sim", key, &cached) {
			return &cached, nil
		}
		r, err := core.Simulate(b.Prog, nil, s.cfg.Opts.Uarch, args, s.cfg.Opts.Limit)
		if err != nil {
			return nil, fmt.Errorf("experiments: base sim %s: %w", b.Name, err)
		}
		s.toStore("base_sim", key, r)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.SimResult), nil
}

// progFor returns the program a reuse scheme runs on: schemes with a CCR
// component need the transformed binary (reuse/invalidate instructions),
// while off and dtm run the untransformed base program — DTM is a pure
// runtime mechanism with no compiler support. The base program is
// prepared first so it is never annotated concurrently with a run.
func (s *Suite) progFor(b *workloads.Benchmark, rc reuse.Config) (*ir.Program, error) {
	if rc.Scheme.UsesCCR() {
		cr, err := s.Compiled(b)
		if err != nil {
			return nil, err
		}
		return cr.Prog, nil
	}
	if _, err := s.prepared(b); err != nil {
		return nil, err
	}
	return b.Prog, nil
}

// ReuseSim returns the cached timing run of b on args under an arbitrary
// reuse scheme. Scheme off delegates to BaseSim — the two are the same
// run by construction, so they share one cache slot and are bit-identical.
// Cache and store keys embed the full scheme key (reuse.Config.Key), so a
// CCR and a DTM run with coinciding numeric geometry can never alias.
func (s *Suite) ReuseSim(b *workloads.Benchmark, args []int64, rc reuse.Config) (*core.SimResult, error) {
	if rc.Scheme == reuse.Off {
		return s.BaseSim(b, args)
	}
	key := b.Name + "|" + dsKey(args) + "|" + rc.Key()
	v, err := s.ccrSim.Do(key, func() (any, error) {
		skey, err := s.storeKey(b, "ds="+dsKey(args)+"|"+rc.Key())
		if err != nil {
			return nil, err
		}
		var cached core.SimResult
		if s.fromStore("ccr_sim", skey, &cached) {
			return &cached, nil
		}
		prog, err := s.progFor(b, rc)
		if err != nil {
			return nil, err
		}
		var tel *core.Telemetry
		if s.cfg.Telemetry {
			tel = &core.Telemetry{Metrics: telemetry.NewMetrics()}
		}
		r, err := core.SimulateReuse(prog, rc, s.cfg.Opts.Uarch, args, s.cfg.Opts.Limit, tel)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sim %s: %w", rc.Scheme, b.Name, err)
		}
		if tel != nil && s.pool.Manifest != nil {
			s.pool.Manifest.SetTelemetry("ccr_sim/"+key, tel.Metrics.Summary())
		}
		s.toStore("ccr_sim", skey, r)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.SimResult), nil
}

// CCRSim returns the cached CCR timing run of b on args with the given
// CRB configuration — the classic scheme through the generic seam.
func (s *Suite) CCRSim(b *workloads.Benchmark, args []int64, cc crb.Config) (*core.SimResult, error) {
	return s.ReuseSim(b, args, reuse.CCR(cc))
}

// OverheadSim returns the cached timing run of the *transformed* program
// with no reuse hardware attached: every reuse instruction misses and
// every invalidate is a no-op, so the run prices the pure instruction
// overhead of the CCR transformation. The decanting analysis diffs its
// opcode histogram against reuse runs to attribute eliminated work.
func (s *Suite) OverheadSim(b *workloads.Benchmark, args []int64) (*core.SimResult, error) {
	key := b.Name + "|" + dsKey(args) + "|overhead"
	v, err := s.ccrSim.Do(key, func() (any, error) {
		skey, err := s.storeKey(b, "ds="+dsKey(args)+"|overhead")
		if err != nil {
			return nil, err
		}
		var cached core.SimResult
		if s.fromStore("ccr_sim", skey, &cached) {
			return &cached, nil
		}
		cr, err := s.Compiled(b)
		if err != nil {
			return nil, err
		}
		r, err := core.Simulate(cr.Prog, nil, s.cfg.Opts.Uarch, args, s.cfg.Opts.Limit)
		if err != nil {
			return nil, fmt.Errorf("experiments: overhead sim %s: %w", b.Name, err)
		}
		s.toStore("ccr_sim", skey, r)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.SimResult), nil
}

// Limit returns the cached reuse-potential limit study of b on its
// training input (Figure 4 runs on the base binary).
func (s *Suite) Limit(b *workloads.Benchmark) (potential.Result, error) {
	return s.LimitFor(b, b.Train)
}

// LimitFor runs (and caches) the limit study for a specific input vector.
func (s *Suite) LimitFor(b *workloads.Benchmark, args []int64) (potential.Result, error) {
	v, err := s.limit.Do(b.Name+"|"+dsKey(args), func() (any, error) {
		key, err := s.storeKey(b, "ds="+dsKey(args))
		if err != nil {
			return nil, err
		}
		var cached potential.Result
		if s.fromStore("limit", key, &cached) {
			return cached, nil
		}
		r, err := potential.Measure(b.Prog, args, s.cfg.Opts.Limit)
		if err != nil {
			return nil, fmt.Errorf("experiments: limit study %s: %w", b.Name, err)
		}
		s.toStore("limit", key, r)
		return r, nil
	})
	if err != nil {
		return potential.Result{}, err
	}
	return v.(potential.Result), nil
}

// BaseDigest returns (computing once per benchmark × dataset) the
// architectural digest of the base program's CRB-off run — the reference
// side of every transparency check.
func (s *Suite) BaseDigest(b *workloads.Benchmark, args []int64) (oracle.Digest, error) {
	v, err := s.digest.Do(b.Name+"|"+dsKey(args), func() (any, error) {
		key, err := s.storeKey(b, "ds="+dsKey(args))
		if err != nil {
			return nil, err
		}
		var cached oracle.Digest
		if s.fromStore("digest", key, &cached) {
			return cached, nil
		}
		d, err := core.DigestRun(b.Prog, nil, args, s.cfg.Opts.Limit)
		if err != nil {
			return nil, fmt.Errorf("experiments: base digest %s: %w", b.Name, err)
		}
		s.toStore("digest", key, d)
		return d, nil
	})
	if err != nil {
		return oracle.Digest{}, err
	}
	return v.(oracle.Digest), nil
}

// ReuseDigest runs b's program functionally under an arbitrary reuse
// scheme and returns its architectural digest. It is not cached: each
// (benchmark, dataset, scheme point) is checked exactly once by the
// verification sweep. Scheme off recomputes a fresh digest of the base
// program rather than returning the cached BaseDigest, so comparing the
// two genuinely re-executes the nil-reuse path.
func (s *Suite) ReuseDigest(b *workloads.Benchmark, args []int64, rc reuse.Config) (oracle.Digest, error) {
	prog, err := s.progFor(b, rc)
	if err != nil {
		return oracle.Digest{}, err
	}
	d, err := core.DigestRunReuse(prog, rc, args, s.cfg.Opts.Limit)
	if err != nil {
		return oracle.Digest{}, fmt.Errorf("experiments: %s digest %s: %w", rc.Scheme, b.Name, err)
	}
	return d, nil
}

// CCRDigest runs the transformed program functionally under the given CRB
// configuration and returns its architectural digest.
func (s *Suite) CCRDigest(b *workloads.Benchmark, args []int64, cc crb.Config) (oracle.Digest, error) {
	return s.ReuseDigest(b, args, reuse.CCR(cc))
}

// SpeedupPoint computes the paper's metric for b on args under an
// arbitrary reuse scheme, with the architectural-result cross-check every
// timed pair gets.
func (s *Suite) SpeedupPoint(b *workloads.Benchmark, args []int64, rc reuse.Config) (float64, error) {
	base, err := s.BaseSim(b, args)
	if err != nil {
		return 0, err
	}
	run, err := s.ReuseSim(b, args, rc)
	if err != nil {
		return 0, err
	}
	if run.Result != base.Result {
		return 0, fmt.Errorf("experiments: %s: architectural mismatch (base %d, %s %d)",
			b.Name, base.Result, rc.Scheme, run.Result)
	}
	return core.Speedup(base, run), nil
}

// Speedup computes the paper's metric for b on args under CRB config cc.
func (s *Suite) Speedup(b *workloads.Benchmark, args []int64, cc crb.Config) (float64, error) {
	return s.SpeedupPoint(b, args, reuse.CCR(cc))
}
