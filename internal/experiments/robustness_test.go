package experiments

import (
	"strings"
	"testing"

	"ccr/internal/runner"
	"ccr/internal/workloads"
)

// TestFailedCellDegradesGracefully plants a booby-trapped benchmark (nil
// program → the cell panics inside the pipeline) in a suite and checks the
// blast radius: the panic is recovered into that benchmark's FAILED row,
// every healthy benchmark's figures are intact, the manifest records the
// panic with a stack, and FailedCells drives the -strict exit condition.
func TestFailedCellDegradesGracefully(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = workloads.Tiny
	s := NewSuite(cfg)
	s.Benches = append(s.Benches, &workloads.Benchmark{
		Name: "boom", Paper: "boom", Train: []int64{1}, Ref: []int64{1},
	})
	m := runner.NewManifest("robustness-test", s.Jobs())
	s.AttachManifest(m)

	res, err := Figure4(s)
	if err != nil {
		t.Fatalf("figure driver aborted instead of degrading: %v", err)
	}
	reason, failed := res.Failed["boom"]
	if !failed {
		t.Fatalf("booby-trapped cell not recorded as failed: %+v", res.Failed)
	}
	out := res.Render()
	if !strings.Contains(out, "FAILED(") {
		t.Fatalf("failed row not rendered:\n%s", out)
	}
	healthy := 0
	for _, row := range res.Rows {
		if _, bad := res.Failed[row.Bench]; bad {
			continue
		}
		healthy++
		if row.RegionPct <= 0 {
			t.Fatalf("healthy row %q polluted by the failure: %+v", row.Bench, row)
		}
	}
	if healthy != len(s.Benches)-1 {
		t.Fatalf("%d healthy rows, want %d", healthy, len(s.Benches)-1)
	}
	if res.AvgRegion <= 0 {
		t.Fatalf("averages must come from the survivors: %+v", res)
	}

	if s.FailedCells() == 0 {
		t.Fatal("FailedCells did not count the failure (-strict would pass)")
	}
	m.Finish()
	if m.FailedCells == 0 {
		t.Fatalf("manifest missed the failed cell: %+v", m)
	}
	if m.Panics == 0 {
		t.Fatalf("manifest missed the recovered panic (reason %q)", reason)
	}
	var rec *runner.CellRecord
	for i := range m.Cells {
		if strings.Contains(m.Cells[i].ID, "boom") && m.Cells[i].Error != "" {
			rec = &m.Cells[i]
		}
	}
	if rec == nil {
		t.Fatal("no cell record for the booby-trapped benchmark")
	}
	if rec.Stack == "" || !strings.Contains(rec.Stack, "goroutine") {
		t.Fatalf("panic stack not in manifest: %+v", rec)
	}
}

// TestVerifyCleanAtTiny runs the full transparency verification sweep at
// Tiny scale: every benchmark × dataset × CRB configuration (plus the
// function-level variant) must match the CRB-off digest.
func TestVerifyCleanAtTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("verification sweep in -short mode")
	}
	s := tinySuite(t)
	v, err := Verify(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Checked == 0 {
		t.Fatal("verification sweep checked nothing")
	}
	if v.Failed() != 0 {
		t.Fatalf("transparency violated on %d points:\n%s", v.Failed(), v.Render())
	}
	if s.FailedCells() != 0 {
		t.Fatalf("%d cells failed during verification", s.FailedCells())
	}
}
