package experiments

import (
	"fmt"

	"ccr/internal/core"
	"ccr/internal/stats"
)

// ComparisonResult positions CCR against the two hardware-only reuse
// schemes of §2.1: dynamic instruction reuse (Sodani & Sohi) and
// block-level reuse (Huang & Lilja). All run on the same machine; the
// baselines need no compiler support (they run the base binary), while
// CCR runs the transformed binary with the default CRB.
type ComparisonResult struct {
	Rows    []string
	Speedup map[string][3]float64 // instr, block, ccr
	Avg     [3]float64
	// Failed maps a benchmark whose cell failed to the failure reason.
	Failed map[string]string
}

// Comparison runs the three mechanisms over the suite, one parallel cell
// per benchmark; a failing benchmark degrades to a FAILED row.
func Comparison(s *Suite) (*ComparisonResult, error) {
	res := &ComparisonResult{Speedup: map[string][3]float64{}, Failed: map[string]string{}}
	rows := make([][3]float64, len(s.Benches))
	errs := s.MapErrs(len(s.Benches),
		func(i int) string { return "comparison/" + s.Benches[i].Name },
		func(i int) error {
			b := s.Benches[i]
			base, err := s.BaseSim(b, b.Train)
			if err != nil {
				return err
			}
			instrCfg := s.cfg.Opts.Uarch
			instrCfg.InstrReuse = true
			instrRun, err := core.Simulate(b.Prog, nil, instrCfg, b.Train, s.cfg.Opts.Limit)
			if err != nil {
				return err
			}
			blockCfg := s.cfg.Opts.Uarch
			blockCfg.BlockReuse = true
			blockRun, err := core.Simulate(b.Prog, nil, blockCfg, b.Train, s.cfg.Opts.Limit)
			if err != nil {
				return err
			}
			ccrSp, err := s.Speedup(b, b.Train, s.cfg.Opts.CRB)
			if err != nil {
				return err
			}
			if instrRun.Result != base.Result || blockRun.Result != base.Result {
				return fmt.Errorf("comparison %s: baseline changed results", b.Name)
			}
			rows[i] = [3]float64{
				core.Speedup(base, instrRun),
				core.Speedup(base, blockRun),
				ccrSp,
			}
			return nil
		})
	var sums [3]float64
	var nOK int
	for i, b := range s.Benches {
		res.Rows = append(res.Rows, b.Name)
		if errs[i] != nil {
			res.Failed[b.Name] = shortReason(errs[i])
			continue
		}
		nOK++
		res.Speedup[b.Name] = rows[i]
		for j := range sums {
			sums[j] += rows[i][j]
		}
	}
	if nOK > 0 {
		for i := range sums {
			res.Avg[i] = sums[i] / float64(nOK)
		}
	}
	return res, nil
}

// Render formats the comparison table.
func (r *ComparisonResult) Render() string {
	t := stats.Table{Header: []string{"benchmark", "instr reuse", "block reuse", "CCR"}}
	for _, b := range r.Rows {
		if reason, ok := r.Failed[b]; ok {
			fc := failCell(reason)
			t.Add(b, fc, fc, fc)
			continue
		}
		v := r.Speedup[b]
		t.Add(b, fmt.Sprintf("%.3f", v[0]), fmt.Sprintf("%.3f", v[1]), fmt.Sprintf("%.3f", v[2]))
	}
	t.Add("average",
		fmt.Sprintf("%.3f", r.Avg[0]), fmt.Sprintf("%.3f", r.Avg[1]), fmt.Sprintf("%.3f", r.Avg[2]))
	return "Related-work comparison: hardware-only reuse vs CCR (§2.1)\n" + t.String()
}
