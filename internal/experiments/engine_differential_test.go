package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/ir"
	"ccr/internal/oracle"
	"ccr/internal/workloads"
)

// TestEngineDifferential is the engine-equivalence gate: for every
// benchmark × dataset × configuration point it checks the predecoded
// engine against the legacy interpreter two ways.
//
//   - Traced: the internal/oracle digests (result, final memory, store and
//     return-value streams) must be byte-identical. The oracle collector
//     attaches a tracer, so this pins the careful tier and the event
//     stream.
//   - Untraced: a plain run with no tracer — the batch tier's fast path —
//     must reproduce the interpreter's result, final memory image, and the
//     complete statistics block (DynInstrs, per-opcode histogram, branch
//     and reuse counters, per-region rows), plus the CRB counters when a
//     buffer is attached.
//
// Configurations cover the untransformed base program, the default CCR
// compilation, a conflict-pressure geometry, and the function-level
// extension (memoization-mode and funcMemo paths).
func TestEngineDifferential(t *testing.T) {
	for _, b := range workloads.All(workloads.Tiny) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opts := core.DefaultOptions()
			cr, err := core.Compile(b.Prog, b.Train, opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			flOpts := core.DefaultOptions()
			flOpts.Region.FunctionLevel = true
			crFL, err := core.Compile(b.Prog, b.Train, flOpts)
			if err != nil {
				t.Fatalf("funclevel compile: %v", err)
			}
			small := crb.Config{Entries: 8, Instances: 2}
			points := []struct {
				name string
				prog *ir.Program
				cfg  *crb.Config
			}{
				{"base", b.Prog, nil},
				{"ccr-default", cr.Prog, &opts.CRB},
				{"ccr-8E2CI", cr.Prog, &small},
				{"funclevel", crFL.Prog, &flOpts.CRB},
			}
			datasets := []struct {
				name string
				args []int64
			}{{"train", b.Train}, {"ref", b.Ref}}
			for _, ds := range datasets {
				for _, pt := range points {
					label := fmt.Sprintf("%s/%s", ds.name, pt.name)

					di, err := core.DigestRunEngine(pt.prog, pt.cfg, ds.args, 0, true)
					if err != nil {
						t.Fatalf("%s: interp digest: %v", label, err)
					}
					de, err := core.DigestRunEngine(pt.prog, pt.cfg, ds.args, 0, false)
					if err != nil {
						t.Fatalf("%s: engine digest: %v", label, err)
					}
					if err := oracle.Compare(di, de); err != nil {
						t.Errorf("%s: traced digest diverged: %v", label, err)
					} else if !di.Equal(de) {
						t.Errorf("%s: digest identity diverged:\ninterp %+v\nengine %+v", label, di, de)
					}

					compareUntraced(t, label, pt.prog, pt.cfg, ds.args)
				}
			}
		})
	}
}

// compareUntraced runs both engines with no tracer attached (the batch
// tier's eligibility condition) and asserts full architectural and
// statistical parity.
func compareUntraced(t *testing.T, label string, prog *ir.Program, cfg *crb.Config, args []int64) {
	t.Helper()
	run := func(interp bool) (*emu.Machine, int64, error) {
		m := emu.New(prog)
		m.Interp = interp
		if cfg != nil {
			m.CRB = crb.New(*cfg, prog)
		}
		res, err := m.Run(args...)
		return m, res, err
	}
	mi, ri, ei := run(true)
	me, re, ee := run(false)
	if (ei == nil) != (ee == nil) || (ei != nil && ei.Error() != ee.Error()) {
		t.Errorf("%s: untraced errs: interp %v, engine %v", label, ei, ee)
		return
	}
	if ri != re {
		t.Errorf("%s: untraced result: interp %d, engine %d", label, ri, re)
	}
	if !reflect.DeepEqual(mi.Mem, me.Mem) {
		t.Errorf("%s: final memory images diverged", label)
	}
	si, se := mi.Stats, me.Stats
	if si.DynInstrs != se.DynInstrs || si.ByOp != se.ByOp ||
		si.Branches != se.Branches || si.TakenBranches != se.TakenBranches {
		t.Errorf("%s: instruction stats diverged:\ninterp dyn=%d br=%d/%d %v\nengine dyn=%d br=%d/%d %v",
			label, si.DynInstrs, si.Branches, si.TakenBranches, si.ByOp,
			se.DynInstrs, se.Branches, se.TakenBranches, se.ByOp)
	}
	if si.ReuseHits != se.ReuseHits || si.ReuseMisses != se.ReuseMisses ||
		si.ReusedInstrs != se.ReusedInstrs || si.MemoAborts != se.MemoAborts ||
		si.Invalidations != se.Invalidations {
		t.Errorf("%s: reuse stats diverged:\ninterp %+v\nengine %+v", label, si, se)
	}
	if !reflect.DeepEqual(si.Regions, se.Regions) {
		t.Errorf("%s: per-region stats diverged:\ninterp %v\nengine %v", label, si.Regions, se.Regions)
	}
	if cfg != nil {
		ci, ce := mi.CRB.(*crb.CRB).Stats(), me.CRB.(*crb.CRB).Stats()
		if ci != ce {
			t.Errorf("%s: CRB stats diverged:\ninterp %+v\nengine %+v", label, ci, ce)
		}
	}
}
