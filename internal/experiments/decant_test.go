package experiments

import (
	"testing"

	"ccr/internal/workloads"
)

// TestDecantShape checks the decanting lab's internal consistency: one
// column per scheme, one ablation row per benchmark, and the two reuse
// decompositions (by loop depth, by mechanism shape) summing to the same
// totals — they split the same reused instructions two ways. The pure
// schemes must also attribute reuse only to their own mechanism.
func TestDecantShape(t *testing.T) {
	s := tinySuite(t)
	r, err := Decant(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schemes) != 3 || len(r.Ablation.Rows) != len(s.Benches) {
		t.Fatalf("shape: %d schemes, %d rows", len(r.Schemes), len(r.Ablation.Rows))
	}
	for si, scheme := range r.Schemes {
		var byDepth, byShape int64
		for _, v := range r.ByDepth[si] {
			byDepth += v
		}
		for _, v := range r.ByShape[si] {
			byShape += v
		}
		if byDepth != byShape {
			t.Fatalf("%s: depth total %d != shape total %d", scheme, byDepth, byShape)
		}
		if byDepth == 0 {
			t.Fatalf("%s: no reuse attributed — the decomposition is vacuous", scheme)
		}
		switch scheme {
		case "ccr":
			if r.ByShape[si][2] != 0 {
				t.Fatalf("ccr attributed %d instrs to traces", r.ByShape[si][2])
			}
		case "dtm":
			if r.ByShape[si][0] != 0 || r.ByShape[si][1] != 0 {
				t.Fatalf("dtm attributed %v to compiler regions", r.ByShape[si][:2])
			}
		}
	}
}

// TestDecantDeterministicAcrossJobs renders the lab from two fresh suites
// at different worker counts: the aggregation pass must be ordered by
// benchmark, not by cell completion, so the outputs are byte-identical.
func TestDecantDeterministicAcrossJobs(t *testing.T) {
	render := func(jobs int) string {
		cfg := DefaultConfig()
		cfg.Scale = workloads.Tiny
		cfg.Jobs = jobs
		r, err := Decant(NewSuite(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Fatalf("decant output depends on -jobs:\n-- jobs=1 --\n%s\n-- jobs=4 --\n%s", serial, parallel)
	}
}
