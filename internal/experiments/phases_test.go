package experiments

import (
	"strings"
	"testing"

	"ccr/internal/crb"
	"ccr/internal/workloads"
)

// TestTrainRefPhases pins the warm-buffer semantics of the phased study:
// the per-phase counter blocks are independent (ResetStats between phases)
// while the buffer contents persist, so the reference phase inherits the
// training phase's recorded instances instead of starting cold. Each
// phase's architectural result must also match an ordinary cold run of the
// same input — warmth is a performance property, never a correctness one.
func TestTrainRefPhases(t *testing.T) {
	s := tinySuite(t)
	b, err := workloads.Lookup("m88ksim", workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	cc := crb.DefaultConfig()
	r, err := TrainRefPhases(s, b, cc)
	if err != nil {
		t.Fatal(err)
	}

	train, ref := r.Phases[0], r.Phases[1]
	if train.Name != "train" || ref.Name != "ref" {
		t.Fatalf("phase names %q,%q", train.Name, ref.Name)
	}
	// Counters were reset between phases: each block is phase-local, so
	// lookups cannot accumulate across the run.
	if train.CRB.Lookups == 0 || ref.CRB.Lookups == 0 {
		t.Fatalf("a phase recorded no lookups: train %+v ref %+v", train.CRB, ref.CRB)
	}
	if train.CRB.Hits+train.CRB.TagMisses+train.CRB.InputMisses != train.CRB.Lookups {
		t.Errorf("train counters inconsistent: %+v", train.CRB)
	}
	// The warm buffer must pay training's cold tag misses only once: the
	// reference phase inherits the resident entries.
	if ref.CRB.TagMisses > train.CRB.TagMisses {
		t.Errorf("ref tag misses %d exceed train's %d — buffer not warm",
			ref.CRB.TagMisses, train.CRB.TagMisses)
	}

	// Architectural transparency per phase: warm reuse must not change
	// either input's result.
	for i, args := range [][]int64{b.Train, b.Ref} {
		cold, err := s.CCRSim(b, args, cc)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Result != r.Phases[i].Result {
			t.Errorf("phase %s result %d != cold run %d",
				r.Phases[i].Name, r.Phases[i].Result, cold.Result)
		}
	}

	out := r.Render()
	if !strings.Contains(out, "train") || !strings.Contains(out, "ref") {
		t.Fatalf("render missing phase rows:\n%s", out)
	}
}
