package experiments

import (
	"fmt"
	"sort"

	"ccr/internal/ir"
	"ccr/internal/stats"
)

// ScalarsResult gathers the headline numbers quoted in the paper's text
// (§5.2 and §6).
type ScalarsResult struct {
	// AvgSpeedup128x16 is the paper's headline "average 30% speedup" at
	// 128 entries × 16 instances.
	AvgSpeedup128x16 float64
	// AvgSpeedup128x8 is the "most cost effective" configuration's mean.
	AvgSpeedup128x8 float64
	// ElimFrac is the mean fraction of base dynamic instructions
	// eliminated by reuse at 128×8.
	ElimFrac float64
	// RepetitionCaptured is the mean fraction of the instruction-level
	// repetition (inputs recurring within an eight-deep history) that
	// the CCR run eliminated — the paper's "40% of dynamic instruction
	// repetitions eliminated".
	RepetitionCaptured float64
	// StaticRegions and CyclicRegions count formed regions suite-wide.
	StaticRegions, CyclicRegions int
	// GroupCoverage is the fraction of static computations falling into
	// the seven Figure 9 groups (paper: ~90%; 100% here since the groups
	// are exhaustive under the bank caps).
	GroupCoverage float64
	// StatelessStaticFrac is the stateless share of static computations
	// (paper: ~65%).
	StatelessStaticFrac float64
	// Failed maps a benchmark whose cell failed to the failure reason;
	// its contribution is excluded from every scalar above.
	Failed map[string]string
}

// scalarsCell is one benchmark's contribution, computed inside a pool cell.
type scalarsCell struct {
	sp16, sp8, elim  float64
	rep              float64
	hasRep           bool
	regions, cyclic  int
	stateless, total float64
}

// Scalars computes the headline numbers, one parallel cell per benchmark;
// a failing benchmark is excluded and recorded in Failed.
func Scalars(s *Suite) (*ScalarsResult, error) {
	res := &ScalarsResult{Failed: map[string]string{}}
	cc16 := s.cfg.Opts.CRB
	cc16.Entries, cc16.Instances = 128, 16
	cc8 := s.cfg.Opts.CRB
	cc8.Entries, cc8.Instances = 128, 8

	cells := make([]scalarsCell, len(s.Benches))
	errs := s.MapErrs(len(s.Benches),
		func(i int) string { return "scalars/" + s.Benches[i].Name },
		func(i int) error {
			b := s.Benches[i]
			c := &cells[i]
			var err error
			if c.sp16, err = s.Speedup(b, b.Train, cc16); err != nil {
				return err
			}
			if c.sp8, err = s.Speedup(b, b.Train, cc8); err != nil {
				return err
			}
			baseRun, err := s.BaseSim(b, b.Train)
			if err != nil {
				return err
			}
			ccrRun, err := s.CCRSim(b, b.Train, cc8)
			if err != nil {
				return err
			}
			c.elim = float64(ccrRun.Emu.ReusedInstrs) / float64(baseRun.Emu.DynInstrs)
			lim, err := s.Limit(b)
			if err != nil {
				return err
			}
			if lim.InstrRepetition > 0 {
				r := float64(ccrRun.Emu.ReusedInstrs) / float64(lim.InstrRepetition)
				if r > 1 {
					r = 1
				}
				c.rep, c.hasRep = r, true
			}
			cr, err := s.Compiled(b)
			if err != nil {
				return err
			}
			for _, rg := range cr.Prog.Regions {
				c.regions++
				c.total++
				if rg.Kind == ir.Cyclic {
					c.cyclic++
				}
				if rg.Class == ir.Stateless {
					c.stateless++
				}
			}
			return nil
		})

	var sp16, sp8, elim, rep []float64
	var slCount, total float64
	for i, b := range s.Benches {
		if errs[i] != nil {
			res.Failed[b.Name] = shortReason(errs[i])
			continue
		}
		c := &cells[i]
		sp16 = append(sp16, c.sp16)
		sp8 = append(sp8, c.sp8)
		elim = append(elim, c.elim)
		if c.hasRep {
			rep = append(rep, c.rep)
		}
		res.StaticRegions += c.regions
		res.CyclicRegions += c.cyclic
		slCount += c.stateless
		total += c.total
	}
	res.AvgSpeedup128x16 = stats.Mean(sp16)
	res.AvgSpeedup128x8 = stats.Mean(sp8)
	res.ElimFrac = stats.Mean(elim)
	res.RepetitionCaptured = stats.Mean(rep)
	res.GroupCoverage = 1.0
	if total > 0 {
		res.StatelessStaticFrac = slCount / total
	}
	return res, nil
}

// Render formats the scalar summary.
func (r *ScalarsResult) Render() string {
	out := fmt.Sprintf(`Headline scalars (§5.2):
  average speedup, 128 entries x 16 CIs : %.3f  (paper: 1.30)
  average speedup, 128 entries x  8 CIs : %.3f  (paper: 1.25)
  dynamic instructions eliminated        : %s  (of base execution)
  region-level repetition captured       : %s  (paper: ~40%% of repetitions)
  static regions formed (suite-wide)     : %d  (%d cyclic)
  stateless share of static computations : %s  (paper: ~65%%)
`,
		r.AvgSpeedup128x16, r.AvgSpeedup128x8,
		stats.Pct(r.ElimFrac), stats.Pct(r.RepetitionCaptured),
		r.StaticRegions, r.CyclicRegions,
		stats.Pct(r.StatelessStaticFrac))
	if len(r.Failed) > 0 {
		var names []string
		for b := range r.Failed {
			names = append(names, b)
		}
		sort.Strings(names)
		for _, b := range names {
			out += fmt.Sprintf("  %s: %s (excluded)\n", b, failCell(r.Failed[b]))
		}
	}
	return out
}
