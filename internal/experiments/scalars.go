package experiments

import (
	"fmt"

	"ccr/internal/ir"
	"ccr/internal/stats"
)

// ScalarsResult gathers the headline numbers quoted in the paper's text
// (§5.2 and §6).
type ScalarsResult struct {
	// AvgSpeedup128x16 is the paper's headline "average 30% speedup" at
	// 128 entries × 16 instances.
	AvgSpeedup128x16 float64
	// AvgSpeedup128x8 is the "most cost effective" configuration's mean.
	AvgSpeedup128x8 float64
	// ElimFrac is the mean fraction of base dynamic instructions
	// eliminated by reuse at 128×8.
	ElimFrac float64
	// RepetitionCaptured is the mean fraction of the instruction-level
	// repetition (inputs recurring within an eight-deep history) that
	// the CCR run eliminated — the paper's "40% of dynamic instruction
	// repetitions eliminated".
	RepetitionCaptured float64
	// StaticRegions and CyclicRegions count formed regions suite-wide.
	StaticRegions, CyclicRegions int
	// GroupCoverage is the fraction of static computations falling into
	// the seven Figure 9 groups (paper: ~90%; 100% here since the groups
	// are exhaustive under the bank caps).
	GroupCoverage float64
	// StatelessStaticFrac is the stateless share of static computations
	// (paper: ~65%).
	StatelessStaticFrac float64
}

// Scalars computes the headline numbers.
func Scalars(s *Suite) (*ScalarsResult, error) {
	res := &ScalarsResult{}
	cc16 := s.cfg.Opts.CRB
	cc16.Entries, cc16.Instances = 128, 16
	cc8 := s.cfg.Opts.CRB
	cc8.Entries, cc8.Instances = 128, 8

	var sp16, sp8, elim, rep []float64
	var slCount, total float64
	for _, b := range s.Benches {
		v16, err := s.Speedup(b, b.Train, cc16)
		if err != nil {
			return nil, err
		}
		v8, err := s.Speedup(b, b.Train, cc8)
		if err != nil {
			return nil, err
		}
		sp16 = append(sp16, v16)
		sp8 = append(sp8, v8)

		baseRun, err := s.BaseSim(b, b.Train)
		if err != nil {
			return nil, err
		}
		ccrRun, err := s.CCRSim(b, b.Train, cc8)
		if err != nil {
			return nil, err
		}
		elim = append(elim, float64(ccrRun.Emu.ReusedInstrs)/float64(baseRun.Emu.DynInstrs))
		lim, err := s.Limit(b)
		if err != nil {
			return nil, err
		}
		if lim.InstrRepetition > 0 {
			r := float64(ccrRun.Emu.ReusedInstrs) / float64(lim.InstrRepetition)
			if r > 1 {
				r = 1
			}
			rep = append(rep, r)
		}

		cr, err := s.Compiled(b)
		if err != nil {
			return nil, err
		}
		for _, rg := range cr.Prog.Regions {
			res.StaticRegions++
			total++
			if rg.Kind == ir.Cyclic {
				res.CyclicRegions++
			}
			if rg.Class == ir.Stateless {
				slCount++
			}
		}
	}
	res.AvgSpeedup128x16 = stats.Mean(sp16)
	res.AvgSpeedup128x8 = stats.Mean(sp8)
	res.ElimFrac = stats.Mean(elim)
	res.RepetitionCaptured = stats.Mean(rep)
	res.GroupCoverage = 1.0
	if total > 0 {
		res.StatelessStaticFrac = slCount / total
	}
	return res, nil
}

// Render formats the scalar summary.
func (r *ScalarsResult) Render() string {
	return fmt.Sprintf(`Headline scalars (§5.2):
  average speedup, 128 entries x 16 CIs : %.3f  (paper: 1.30)
  average speedup, 128 entries x  8 CIs : %.3f  (paper: 1.25)
  dynamic instructions eliminated        : %s  (of base execution)
  region-level repetition captured       : %s  (paper: ~40%% of repetitions)
  static regions formed (suite-wide)     : %d  (%d cyclic)
  stateless share of static computations : %s  (paper: ~65%%)
`,
		r.AvgSpeedup128x16, r.AvgSpeedup128x8,
		stats.Pct(r.ElimFrac), stats.Pct(r.RepetitionCaptured),
		r.StaticRegions, r.CyclicRegions,
		stats.Pct(r.StatelessStaticFrac))
}
