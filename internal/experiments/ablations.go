package experiments

import (
	"fmt"

	"ccr/internal/core"
	"ccr/internal/reuse"
	"ccr/internal/stats"
	"ccr/internal/workloads"
)

// AblationResult is a generic labelled sweep of average speedups.
type AblationResult struct {
	Title  string
	Labels []string
	// Rows maps benchmark → speedup per label; Avg is per label.
	Rows    []string
	Speedup map[string][]float64
	Avg     []float64
	// Failed maps a benchmark to per-label failure reasons ("" = cell ok);
	// failed cells render as FAILED and drop out of the averages.
	Failed rowFailures
}

// Render formats the ablation as a table.
func (r *AblationResult) Render() string {
	head := append([]string{"benchmark"}, r.Labels...)
	t := stats.Table{Header: head}
	for _, b := range r.Rows {
		cells := []string{b}
		for pi, sp := range r.Speedup[b] {
			if reason := r.Failed.get(b, pi); reason != "" {
				cells = append(cells, failCell(reason))
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3f", sp))
		}
		t.Add(cells...)
	}
	avg := []string{"average"}
	for _, a := range r.Avg {
		avg = append(avg, fmt.Sprintf("%.3f", a))
	}
	t.Add(avg...)
	return r.Title + "\n" + t.String()
}

// AblationAssoc sweeps CRB set associativity at the small 32-entry
// capacity, where programs with large variant-kernel families (gcc, li)
// overflow a direct-mapped buffer and suffer region-ID conflict evictions —
// the §3.1 design-enhancement discussion. At 128 entries every formed
// region of this suite maps to a distinct entry and associativity is moot.
func AblationAssoc(s *Suite) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: CRB set associativity (32 entries, 8 CIs)"}
	var points []SweepPoint
	for _, a := range []int{1, 2, 4} {
		c := s.cfg.Opts.CRB
		c.Entries, c.Instances, c.Assoc = 32, 8, a
		points = append(points, SweepPoint{Label: fmt.Sprintf("%d-way", a), Reuse: reuse.CCR(c)})
	}
	return runAblation(s, res, points)
}

// AblationNoMem sweeps the fraction of computation entries without
// memory-valid hardware — the §6 "nonuniform capacities" future work.
// Figure 9(b) motivates it: only a minority of dynamic reuse needs memory
// validation, so shaving that hardware from part of the buffer should cost
// little — until memory-dependent regions start failing to record.
func AblationNoMem(s *Suite) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: entries without memory-valid hardware (128 entries, 8 CIs)"}
	var points []SweepPoint
	for _, frac := range []float64{0, 0.5, 0.75, 1} {
		c := s.cfg.Opts.CRB
		c.Entries, c.Instances, c.NoMemEntriesFrac = 128, 8, frac
		points = append(points, SweepPoint{Label: fmt.Sprintf("%.0f%%", 100*frac), Reuse: reuse.CCR(c)})
	}
	return runAblation(s, res, points)
}

// runAblation fans the (benchmark × configuration) cells of an ablation
// out across the suite's worker pool, like the Figure 8 sweeps. Failed
// cells degrade to FAILED entries rather than aborting the ablation.
func runAblation(s *Suite, res *AblationResult, points []SweepPoint) (*AblationResult, error) {
	for _, p := range points {
		res.Labels = append(res.Labels, p.Label)
	}
	nb, np := len(s.Benches), len(points)
	rows := make([][]float64, nb)
	for i := range rows {
		rows[i] = make([]float64, np)
	}
	errs := s.MapErrs(nb*np,
		func(i int) string {
			return fmt.Sprintf("ablation/%s/%s", s.Benches[i/np].Name, points[i%np].Label)
		},
		func(i int) error {
			b, pt := s.Benches[i/np], points[i%np]
			sp, err := s.SpeedupPoint(b, b.Train, pt.Reuse)
			if err != nil {
				return err
			}
			rows[i/np][i%np] = sp
			return nil
		})
	res.Speedup = map[string][]float64{}
	sums := make([][]float64, np)
	for bi, b := range s.Benches {
		res.Rows = append(res.Rows, b.Name)
		res.Speedup[b.Name] = rows[bi]
		for pi := range points {
			if err := errs[bi*np+pi]; err != nil {
				res.Failed.set(b.Name, np, pi, err)
				continue
			}
			sums[pi] = append(sums[pi], rows[bi][pi])
		}
	}
	res.Avg = make([]float64, np)
	for i := range points {
		res.Avg[i] = stats.Mean(sums[i])
	}
	return res, nil
}

// twoColumnAblation fans one cell per benchmark across the pool, each cell
// computing both columns of its row; a failing benchmark degrades to a
// FAILED row instead of aborting the ablation.
func twoColumnAblation(s *Suite, res *AblationResult, tag string, cell func(b *workloads.Benchmark) ([2]float64, error)) (*AblationResult, error) {
	rows := make([][2]float64, len(s.Benches))
	errs := s.MapErrs(len(s.Benches),
		func(i int) string { return tag + "/" + s.Benches[i].Name },
		func(i int) error {
			row, err := cell(s.Benches[i])
			if err != nil {
				return err
			}
			rows[i] = row
			return nil
		})
	res.Speedup = map[string][]float64{}
	sums := make([][]float64, 2)
	for bi, b := range s.Benches {
		res.Rows = append(res.Rows, b.Name)
		res.Speedup[b.Name] = rows[bi][:]
		if errs[bi] != nil {
			res.Failed.setRow(b.Name, 2, errs[bi])
			continue
		}
		sums[0] = append(sums[0], rows[bi][0])
		sums[1] = append(sums[1], rows[bi][1])
	}
	res.Avg = []float64{stats.Mean(sums[0]), stats.Mean(sums[1])}
	return res, nil
}

// HeuristicPoint is one region-formation setting of the heuristic ablation.
type HeuristicPoint struct {
	Label   string
	Mutate  func(*core.Options)
	Regions int
	Avg     float64
}

// AblationHeuristics re-compiles the suite under varied formation
// thresholds — the §4.4 sensitivity the paper describes empirically
// ("lower values tend to admit too many instructions ... that are not
// successfully reused"). Unlike the CRB sweeps this needs one fresh
// compilation per point, so it builds its own pipeline instead of the
// shared Suite caches.
func AblationHeuristics(cfg Config) ([]HeuristicPoint, error) {
	points := []HeuristicPoint{
		{Label: "paper (R=0.65)", Mutate: func(o *core.Options) {}},
		{Label: "strict (R=0.90)", Mutate: func(o *core.Options) {
			o.Region.R = 0.90
			o.Region.MinLiveInInvariance = 0.70
		}},
		{Label: "lax (R=0.30)", Mutate: func(o *core.Options) {
			o.Region.R = 0.30
			o.Region.MinLiveInInvariance = 0.15
			o.Region.BlockReusableFrac = 0.25
		}},
		{Label: "greedy (R=0)", Mutate: func(o *core.Options) {
			o.Region.R = 0
			o.Region.Rm = 0
			o.Region.MinLiveInInvariance = 0
			o.Region.BlockReusableFrac = 0
			o.Region.MinStaticSize = 1
		}},
	}
	benches := workloads.All(cfg.Scale)
	for pi := range points {
		opts := cfg.Opts
		points[pi].Mutate(&opts)
		var sps []float64
		for _, b := range benches {
			cr, err := core.Compile(b.Prog, b.Train, opts)
			if err != nil {
				return nil, fmt.Errorf("heuristic ablation %s/%s: %w", points[pi].Label, b.Name, err)
			}
			points[pi].Regions += len(cr.Prog.Regions)
			base, err := core.Simulate(b.Prog, nil, opts.Uarch, b.Train, opts.Limit)
			if err != nil {
				return nil, err
			}
			ccr, err := core.Simulate(cr.Prog, &opts.CRB, opts.Uarch, b.Train, opts.Limit)
			if err != nil {
				return nil, err
			}
			if base.Result != ccr.Result {
				return nil, fmt.Errorf("heuristic ablation %s/%s: architectural mismatch",
					points[pi].Label, b.Name)
			}
			sps = append(sps, core.Speedup(base, ccr))
		}
		points[pi].Avg = stats.Mean(sps)
	}
	return points, nil
}

// RenderHeuristics formats the heuristic ablation.
func RenderHeuristics(points []HeuristicPoint) string {
	t := stats.Table{Header: []string{"formation thresholds", "regions", "avg speedup"}}
	for _, p := range points {
		t.Add(p.Label, fmt.Sprintf("%d", p.Regions), fmt.Sprintf("%.3f", p.Avg))
	}
	return "Ablation: region-formation heuristic thresholds (128 entries, 8 CIs)\n" + t.String()
}

// AblationSpeculation compares the base reuse-validation timing against
// the §6 value-speculation variant that hides validation latency behind
// speculative commit of the recorded live-out values.
func AblationSpeculation(s *Suite) (*AblationResult, error) {
	res := &AblationResult{
		Title:  "Ablation: speculative reuse validation (128 entries, 8 CIs)",
		Labels: []string{"validate", "speculate"},
	}
	cc := s.cfg.Opts.CRB
	specU := s.cfg.Opts.Uarch
	specU.SpeculativeValidation = true
	return twoColumnAblation(s, res, "spec", func(b *workloads.Benchmark) ([2]float64, error) {
		baseRun, err := s.BaseSim(b, b.Train)
		if err != nil {
			return [2]float64{}, err
		}
		normal, err := s.CCRSim(b, b.Train, cc)
		if err != nil {
			return [2]float64{}, err
		}
		cr, err := s.Compiled(b)
		if err != nil {
			return [2]float64{}, err
		}
		spec, err := core.Simulate(cr.Prog, &cc, specU, b.Train, s.cfg.Opts.Limit)
		if err != nil {
			return [2]float64{}, err
		}
		if spec.Result != baseRun.Result {
			return [2]float64{}, fmt.Errorf("speculation ablation %s: architectural mismatch", b.Name)
		}
		return [2]float64{core.Speedup(baseRun, normal), core.Speedup(baseRun, spec)}, nil
	})
}

// AblationFuncLevel compares the paper's evaluated configuration against
// the §6 function-level extension: calls to pure functions with recurring
// arguments become reuse regions of their own, eliminating the call,
// callee body and return in one hit. Each point needs its own compilation,
// so the shared caches are bypassed for the extension runs.
func AblationFuncLevel(s *Suite) (*AblationResult, error) {
	res := &AblationResult{
		Title:  "Ablation: function-level CCR (128 entries, 8 CIs)",
		Labels: []string{"regions", "+funclevel"},
	}
	flOpts := s.cfg.Opts
	flOpts.Region.FunctionLevel = true
	return twoColumnAblation(s, res, "funclevel", func(b *workloads.Benchmark) ([2]float64, error) {
		baseRun, err := s.BaseSim(b, b.Train)
		if err != nil {
			return [2]float64{}, err
		}
		normal, err := s.Speedup(b, b.Train, s.cfg.Opts.CRB)
		if err != nil {
			return [2]float64{}, err
		}
		cr, err := core.Compile(b.Prog, b.Train, flOpts)
		if err != nil {
			return [2]float64{}, fmt.Errorf("funclevel ablation %s: %w", b.Name, err)
		}
		fl, err := core.Simulate(cr.Prog, &flOpts.CRB, flOpts.Uarch, b.Train, flOpts.Limit)
		if err != nil {
			return [2]float64{}, err
		}
		if fl.Result != baseRun.Result {
			return [2]float64{}, fmt.Errorf("funclevel ablation %s: architectural mismatch", b.Name)
		}
		return [2]float64{normal, core.Speedup(baseRun, fl)}, nil
	})
}

// AblationOutOfOrder asks the question §3.3 raises: how much of the CCR
// benefit survives on a dynamically scheduled machine that can already
// hide latency? Reuse still saves fetched/executed instructions, but no
// longer shortcuts dependences the scheduler could overlap.
func AblationOutOfOrder(s *Suite) (*AblationResult, error) {
	res := &AblationResult{
		Title:  "Ablation: in-order vs out-of-order machine (128 entries, 8 CIs)",
		Labels: []string{"inorder", "ooo"},
	}
	oooCfg := s.cfg.Opts.Uarch
	oooCfg.OutOfOrder = true
	oooCfg.ROBSize = 64
	return twoColumnAblation(s, res, "ooo", func(b *workloads.Benchmark) ([2]float64, error) {
		inorderSp, err := s.Speedup(b, b.Train, s.cfg.Opts.CRB)
		if err != nil {
			return [2]float64{}, err
		}
		cr, err := s.Compiled(b)
		if err != nil {
			return [2]float64{}, err
		}
		oooBase, err := core.Simulate(b.Prog, nil, oooCfg, b.Train, s.cfg.Opts.Limit)
		if err != nil {
			return [2]float64{}, err
		}
		oooCCR, err := core.Simulate(cr.Prog, &s.cfg.Opts.CRB, oooCfg, b.Train, s.cfg.Opts.Limit)
		if err != nil {
			return [2]float64{}, err
		}
		if oooCCR.Result != oooBase.Result {
			return [2]float64{}, fmt.Errorf("ooo ablation %s: architectural mismatch", b.Name)
		}
		return [2]float64{inorderSp, core.Speedup(oooBase, oooCCR)}, nil
	})
}
