package experiments

import (
	"errors"
	"strings"
)

// errsJoin collapses a per-index error vector into one joined error.
func errsJoin(errs []error) error {
	var nonNil []error
	for _, e := range errs {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	return errors.Join(nonNil...)
}

// shortReason compresses a cell error into a label that fits a table
// cell: the runner's "cell <id>:" prefix is stripped, only the first line
// survives, and the rest is capped.
func shortReason(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	msg = strings.TrimPrefix(msg, "runner: ")
	if strings.HasPrefix(msg, "cell ") {
		if i := strings.Index(msg, ": "); i >= 0 {
			msg = msg[i+2:]
		}
	}
	const maxLen = 60
	if len(msg) > maxLen {
		msg = msg[:maxLen-1] + "…"
	}
	return msg
}

// failCell renders a failure reason as a figure cell.
func failCell(reason string) string { return "FAILED(" + reason + ")" }

// rowFailures tracks per-(row, column) failure reasons for a tabular
// figure; "" means the cell succeeded. The zero value is ready to use via
// the set method.
type rowFailures map[string][]string

// set records a failure for (row, col) in a table with ncols columns.
func (f *rowFailures) set(row string, ncols, col int, err error) {
	if err == nil {
		return
	}
	if *f == nil {
		*f = rowFailures{}
	}
	cells := (*f)[row]
	if cells == nil {
		cells = make([]string, ncols)
		(*f)[row] = cells
	}
	cells[col] = shortReason(err)
}

// setRow records one reason for every column of a row.
func (f *rowFailures) setRow(row string, ncols int, err error) {
	for c := 0; c < ncols; c++ {
		f.set(row, ncols, c, err)
	}
}

// get returns the failure reason for (row, col), or "".
func (f rowFailures) get(row string, col int) string {
	cells := f[row]
	if cells == nil || col >= len(cells) {
		return ""
	}
	return cells[col]
}

// failedRow reports whether every column of the row failed.
func (f rowFailures) failedRow(row string) bool {
	cells := f[row]
	if cells == nil {
		return false
	}
	for _, c := range cells {
		if c == "" {
			return false
		}
	}
	return true
}
