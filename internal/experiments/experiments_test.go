package experiments

import (
	"strings"
	"testing"

	"ccr/internal/ir"
	"ccr/internal/workloads"
)

// tinySuite builds one shared suite for the package's tests.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = workloads.Tiny
	return NewSuite(cfg)
}

func TestFigure4Shape(t *testing.T) {
	s := tinySuite(t)
	r, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(s.Benches) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.RegionPct < row.BlockPct {
			t.Fatalf("%s: region %.1f%% below block %.1f%%", row.Bench, row.RegionPct, row.BlockPct)
		}
		if row.BlockPct < 0 || row.RegionPct > 100 {
			t.Fatalf("%s: out of range", row.Bench)
		}
	}
	if r.AvgRegion <= r.AvgBlock {
		t.Fatalf("region average %.1f must exceed block average %.1f", r.AvgRegion, r.AvgBlock)
	}
	if !strings.Contains(r.Render(), "Figure 4") {
		t.Fatal("render")
	}
}

func TestFigure8Monotonicity(t *testing.T) {
	s := tinySuite(t)
	a, err := Figure8a(s)
	if err != nil {
		t.Fatal(err)
	}
	// More instances can only help on average (same compile, larger CRB).
	if a.Avg[2] < a.Avg[0]-0.01 {
		t.Fatalf("16 CIs (%f) should not lose to 4 CIs (%f)", a.Avg[2], a.Avg[0])
	}
	b, err := Figure8b(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Avg[2] < b.Avg[0]-0.01 {
		t.Fatalf("128 entries (%f) should not lose to 32 (%f)", b.Avg[2], b.Avg[0])
	}
	// The shared-point consistency: 128×8 appears in both sweeps.
	if d := a.Avg[1] - b.Avg[2]; d > 0.001 || d < -0.001 {
		t.Fatalf("128×8 differs across sweeps: %f vs %f", a.Avg[1], b.Avg[2])
	}
}

func TestFigure9Distributions(t *testing.T) {
	s := tinySuite(t)
	r, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Rows {
		var st, dy float64
		for _, g := range PaperGroups {
			st += r.Static[b][g]
			dy += r.Dynamic[b][g]
		}
		if st > 1.0001 || dy > 1.0001 {
			t.Fatalf("%s: distribution exceeds 100%%: static %f dynamic %f", b, st, dy)
		}
	}
	if r.AcyclicReplaced < 5 {
		t.Fatalf("acyclic regions replace %.1f instructions, expected several", r.AcyclicReplaced)
	}
}

func TestGroupOfBuckets(t *testing.T) {
	cases := []struct {
		in   *ir.Region
		want string
	}{
		{&ir.Region{Class: ir.Stateless, Inputs: make([]ir.Reg, 1)}, "SL_4"},
		{&ir.Region{Class: ir.Stateless, Inputs: make([]ir.Reg, 5)}, "SL_6"},
		{&ir.Region{Class: ir.Stateless, Inputs: make([]ir.Reg, 8)}, "SL_8"},
		{&ir.Region{Class: ir.MemoryDependent, Inputs: make([]ir.Reg, 2), MemObjects: make([]ir.MemID, 1)}, "MD_3_1"},
		{&ir.Region{Class: ir.MemoryDependent, Inputs: make([]ir.Reg, 5), MemObjects: make([]ir.MemID, 1)}, "MD_6_1"},
		{&ir.Region{Class: ir.MemoryDependent, Inputs: make([]ir.Reg, 2), MemObjects: make([]ir.MemID, 2)}, "MD_2_2"},
		{&ir.Region{Class: ir.MemoryDependent, Inputs: make([]ir.Reg, 2), MemObjects: make([]ir.MemID, 3)}, "MD_2_3"},
	}
	for _, tc := range cases {
		if got := GroupOf(tc.in); got != tc.want {
			t.Fatalf("GroupOf = %s, want %s", got, tc.want)
		}
	}
}

func TestFigure10Cumulative(t *testing.T) {
	s := tinySuite(t)
	r, err := Figure10(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Rows {
		v := r.Top[b]
		for i := 1; i < 4; i++ {
			if v[i] < v[i-1]-1e-9 {
				t.Fatalf("%s: cumulative shares must be monotone: %v", b, v)
			}
		}
		if v[3] > 1.0001 {
			t.Fatalf("%s: share > 100%%: %v", b, v)
		}
	}
}

func TestFigure11ArchitecturalConsistency(t *testing.T) {
	s := tinySuite(t)
	r, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.TrainSpeedup <= 0 || row.RefSpeedup <= 0 {
			t.Fatalf("%s: non-positive speedup", row.Bench)
		}
		if row.TrainElimFrac < 0 || row.TrainElimFrac > 1 {
			t.Fatalf("%s: elimination fraction out of range", row.Bench)
		}
	}
}

func TestScalars(t *testing.T) {
	s := tinySuite(t)
	r, err := Scalars(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.StaticRegions == 0 || r.CyclicRegions == 0 {
		t.Fatalf("region counts: %+v", r)
	}
	if r.AvgSpeedup128x16+0.01 < r.AvgSpeedup128x8 {
		t.Fatalf("16 CIs below 8 CIs: %f vs %f", r.AvgSpeedup128x16, r.AvgSpeedup128x8)
	}
	if r.StatelessStaticFrac <= 0 || r.StatelessStaticFrac > 1 {
		t.Fatalf("stateless fraction %f", r.StatelessStaticFrac)
	}
	if !strings.Contains(r.Render(), "average speedup") {
		t.Fatal("render")
	}
}

func TestSuiteCaching(t *testing.T) {
	s := tinySuite(t)
	b := s.Benches[0]
	c1, err := s.Compiled(b)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := s.Compiled(b)
	if c1 != c2 {
		t.Fatal("compilation not cached")
	}
	r1, err := s.BaseSim(b, b.Train)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.BaseSim(b, b.Train)
	if r1 != r2 {
		t.Fatal("base simulation not cached")
	}
}

func TestAblationSpeculationNeverHurts(t *testing.T) {
	s := tinySuite(t)
	r, err := AblationSpeculation(s)
	if err != nil {
		t.Fatal(err)
	}
	// Hiding validation latency can only help on average (hits are the
	// common case for formed regions).
	if r.Avg[1] < r.Avg[0]-0.005 {
		t.Fatalf("speculative validation hurt: %f vs %f", r.Avg[1], r.Avg[0])
	}
}

// TestPaperShapes pins the qualitative results the reproduction targets.
// It runs at Small scale (a few seconds); skipped with -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs the full suite")
	}
	cfg := DefaultConfig()
	cfg.Scale = workloads.Small
	s := NewSuite(cfg)

	a, err := Figure8a(s)
	if err != nil {
		t.Fatal(err)
	}
	// The averages land near the paper's 1.20 / 1.25 / 1.30.
	for i, bounds := range [][2]float64{{1.10, 1.35}, {1.15, 1.40}, {1.17, 1.45}} {
		if a.Avg[i] < bounds[0] || a.Avg[i] > bounds[1] {
			t.Errorf("Fig8a avg[%d] = %.3f outside [%.2f, %.2f]", i, a.Avg[i], bounds[0], bounds[1])
		}
	}
	// m88ksim is the best benchmark (paper: "most effective for
	// 124.m88ksim").
	best, bestName := 0.0, ""
	for name, sp := range a.Speedup {
		if sp[1] > best {
			best, bestName = sp[1], name
		}
	}
	if bestName != "m88ksim" {
		t.Errorf("best benchmark = %s (%.3f), paper says m88ksim", bestName, best)
	}
	// compress is among the weakest (paper: flat distribution, small win).
	if sp := a.Speedup["compress"][1]; sp > 1.15 {
		t.Errorf("compress speedup %.3f, expected small", sp)
	}
	// pgpencode gains from more instances (paper: "variation in the
	// number of computation instances substantially increased the
	// performance speedup of pgpencode").
	pgp := a.Speedup["pgpencode"]
	if pgp[2] < pgp[0]+0.05 {
		t.Errorf("pgpencode not CI-sensitive: %v", pgp)
	}

	f4, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	if f4.AvgRegion < 1.3*f4.AvgBlock {
		t.Errorf("region potential %.1f%% not well above block %.1f%%", f4.AvgRegion, f4.AvgBlock)
	}
}

func TestAblationFuncLevel(t *testing.T) {
	s := tinySuite(t)
	r, err := AblationFuncLevel(s)
	if err != nil {
		t.Fatal(err)
	}
	// The extension may only add reuse opportunities.
	if r.Avg[1] < r.Avg[0]-0.01 {
		t.Fatalf("function-level CCR hurt on average: %f vs %f", r.Avg[1], r.Avg[0])
	}
}

func TestAblationOutOfOrder(t *testing.T) {
	s := tinySuite(t)
	r, err := AblationOutOfOrder(s)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse must still help on the dynamically scheduled machine, even
	// if less than on the in-order one.
	if r.Avg[1] < 1.0 {
		t.Fatalf("CCR on OoO machine slowed down: %f", r.Avg[1])
	}
}

func TestComparisonOrdering(t *testing.T) {
	s := tinySuite(t)
	r, err := Comparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(s.Benches) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's positioning: compiler-directed regions beat block-level
	// hardware reuse on average.
	if r.Avg[2] <= r.Avg[1] {
		t.Fatalf("CCR (%.3f) should beat block-level reuse (%.3f)", r.Avg[2], r.Avg[1])
	}
	for _, b := range r.Rows {
		for _, v := range r.Speedup[b] {
			if v <= 0 {
				t.Fatalf("%s: non-positive speedup", b)
			}
		}
	}
	if !strings.Contains(r.Render(), "Related-work comparison") {
		t.Fatal("render")
	}
}

func TestRenderersProduceTables(t *testing.T) {
	s := tinySuite(t)
	f8, err := Figure8a(s)
	if err != nil {
		t.Fatal(err)
	}
	out := f8.Render("Figure 8(a)")
	for _, want := range []string{"Figure 8(a)", "average", "m88ksim"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	f9, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f9.Render(), "Figure 9(b)") {
		t.Fatal("figure 9 render")
	}
	f10, err := Figure10(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f10.Render(), "TOP 10%") {
		t.Fatal("figure 10 render")
	}
	f11, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f11.Render(), "train") {
		t.Fatal("figure 11 render")
	}
	ab, err := AblationAssoc(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ab.Render(), "associativity") {
		t.Fatal("ablation render")
	}
	h, err := AblationHeuristics(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderHeuristics(h), "thresholds") {
		t.Fatal("heuristics render")
	}
}
