package experiments

import (
	"path/filepath"
	"testing"

	"ccr/internal/store"
	"ccr/internal/workloads"
)

func storeConfig(t *testing.T, dir string) Config {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Revision: "test-rev"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scale = workloads.Tiny
	cfg.Jobs = 2
	cfg.Store = st
	return cfg
}

// TestSuiteStorePersistence is the durability half of the resume
// guarantee: a second suite (a fresh process, as far as the caches are
// concerned) reloads compilations, simulations, digests and limit studies
// from the store instead of recomputing, and every reloaded artifact is
// bit-identical to the freshly computed one — including a CCR simulation
// run on a compile artifact that was dumped to text and re-parsed.
func TestSuiteStorePersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("store persistence test runs full tiny-scale artifacts")
	}
	dir := filepath.Join(t.TempDir(), "store")

	cold := NewSuite(storeConfig(t, dir))
	b := cold.Benches[0]
	cc := cold.Config().Opts.CRB

	coldSpeed, err := cold.Speedup(b, b.Train, cc)
	if err != nil {
		t.Fatal(err)
	}
	coldBase, err := cold.BaseDigest(b, b.Train)
	if err != nil {
		t.Fatal(err)
	}
	coldCCR, err := cold.CCRDigest(b, b.Train, cc)
	if err != nil {
		t.Fatal(err)
	}
	coldLimit, err := cold.Limit(b)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Store().Stats(); st.Puts == 0 {
		t.Fatalf("cold suite persisted nothing: %+v", st)
	}

	// A brand-new suite over the same store: everything the cold run
	// persisted must come back from disk.
	warm := NewSuite(storeConfig(t, dir))
	wb := warm.Benches[0]
	warmSpeed, err := warm.Speedup(wb, wb.Train, cc)
	if err != nil {
		t.Fatal(err)
	}
	warmBase, err := warm.BaseDigest(wb, wb.Train)
	if err != nil {
		t.Fatal(err)
	}
	warmCCR, err := warm.CCRDigest(wb, wb.Train, cc)
	if err != nil {
		t.Fatal(err)
	}
	warmLimit, err := warm.Limit(wb)
	if err != nil {
		t.Fatal(err)
	}

	if warmSpeed != coldSpeed {
		t.Errorf("speedup diverged across store reload: %v vs %v", warmSpeed, coldSpeed)
	}
	if !warmBase.Equal(coldBase) {
		t.Errorf("base digest diverged across store reload")
	}
	// CCRDigest on the warm suite runs on the re-parsed persisted compile:
	// equality here proves the dump→parse round trip preserves execution
	// semantics bit-for-bit.
	if !warmCCR.Equal(coldCCR) {
		t.Errorf("ccr digest diverged across store reload (compile round trip broken?)")
	}
	if warmLimit != coldLimit {
		t.Errorf("limit study diverged across store reload: %+v vs %+v", warmLimit, coldLimit)
	}

	st := warm.Store().Stats()
	// compile, base_sim, ccr_sim, digest, limit — at least these five
	// artifacts must have come from the store, with nothing recomputed.
	if st.Hits < 5 {
		t.Errorf("warm suite store hits = %d, want >= 5 (%+v)", st.Hits, st)
	}
	if st.Puts != 0 {
		t.Errorf("warm suite recomputed %d artifacts (%+v)", st.Puts, st)
	}
}

// TestSuiteStoreRevisionDiscipline: artifacts written by one build
// revision are never served to another — the suite recomputes instead.
func TestSuiteStoreRevisionDiscipline(t *testing.T) {
	if testing.Short() {
		t.Skip("store persistence test runs full tiny-scale artifacts")
	}
	dir := filepath.Join(t.TempDir(), "store")

	cold := NewSuite(storeConfig(t, dir))
	b := cold.Benches[0]
	if _, err := cold.BaseDigest(b, b.Train); err != nil {
		t.Fatal(err)
	}

	other, err := store.Open(store.Options{Dir: dir, Revision: "other-rev"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scale = workloads.Tiny
	cfg.Store = other
	stale := NewSuite(cfg)
	sb := stale.Benches[0]
	if _, err := stale.BaseDigest(sb, sb.Train); err != nil {
		t.Fatal(err)
	}
	st := other.Stats()
	if st.Stale == 0 {
		t.Errorf("stale-revision artifacts were not detected: %+v", st)
	}
	if st.Hits != 0 {
		t.Errorf("another revision's artifacts were served: %+v", st)
	}
}
