package experiments

import (
	"fmt"

	"ccr/internal/crb"
	"ccr/internal/emu"
	"ccr/internal/stats"
	"ccr/internal/workloads"
)

// PhaseStats is one phase's slice of a warm-buffer run: the CRB counters
// accumulated during that phase only (the counter block is reset between
// phases without flushing buffer contents) plus the phase's reuse outcome.
type PhaseStats struct {
	Name         string
	CRB          crb.Stats
	Result       int64
	ReusedInstrs int64
	Hits, Misses int64
}

// PhasedResult is the train-then-reference warm-buffer study of one
// benchmark: the reference phase starts with the buffer state the training
// phase left behind, so its counters expose how much recorded state
// survives an input change — invisible when every run starts cold.
type PhasedResult struct {
	Bench  string
	Phases [2]PhaseStats
}

// TrainRefPhases runs the transformed program on the training input and
// then the reference input against one persistent CRB, resetting the
// counter block (crb.ResetStats) between the phases so each phase reports
// separately.
func TrainRefPhases(s *Suite, b *workloads.Benchmark, cc crb.Config) (*PhasedResult, error) {
	cr, err := s.Compiled(b)
	if err != nil {
		return nil, err
	}
	buf := crb.New(cc, cr.Prog)
	res := &PhasedResult{Bench: b.Name}
	inputs := [2][]int64{b.Train, b.Ref}
	names := [2]string{"train", "ref"}
	m := emu.New(cr.Prog)
	m.CRB = buf
	m.Limit = s.cfg.Opts.Limit
	for i := range inputs {
		if i > 0 {
			// Reset restores the architectural state and clears the run
			// statistics but keeps the attached CRB — exactly the
			// warm-buffer semantics this study measures.
			m.Reset()
		}
		r, err := m.Run(inputs[i]...)
		if err != nil {
			return nil, fmt.Errorf("experiments: phased run %s/%s: %w", b.Name, names[i], err)
		}
		res.Phases[i] = PhaseStats{
			Name:         names[i],
			CRB:          buf.Stats(),
			Result:       r,
			ReusedInstrs: m.Stats.ReusedInstrs,
			Hits:         m.Stats.ReuseHits,
			Misses:       m.Stats.ReuseMisses,
		}
		buf.ResetStats()
	}
	return res, nil
}

// Render formats the phase comparison as a table.
func (r *PhasedResult) Render() string {
	t := stats.Table{Header: []string{"phase", "lookups", "hits", "tag-miss", "input-miss",
		"records", "evictions", "invalidates", "reused"}}
	for _, p := range r.Phases {
		t.Add(p.Name,
			fmt.Sprintf("%d", p.CRB.Lookups), fmt.Sprintf("%d", p.CRB.Hits),
			fmt.Sprintf("%d", p.CRB.TagMisses), fmt.Sprintf("%d", p.CRB.InputMisses),
			fmt.Sprintf("%d", p.CRB.Records), fmt.Sprintf("%d", p.CRB.Evictions),
			fmt.Sprintf("%d", p.CRB.Invalidates), fmt.Sprintf("%d", p.ReusedInstrs))
	}
	return fmt.Sprintf("%s: warm-buffer train/ref phases\n%s", r.Bench, t.String())
}
