package experiments

import (
	"fmt"

	"ccr/internal/core"
	"ccr/internal/crb"
	"ccr/internal/oracle"
	"ccr/internal/reuse"
	"ccr/internal/runner"
	"ccr/internal/stats"
	"ccr/internal/workloads"
)

// VerifyRow is one failed transparency check: a (benchmark, dataset, CRB
// configuration) point whose CCR run diverged from the base run — or could
// not be digested at all.
type VerifyRow struct {
	Bench   string
	Dataset string // "train" or "ref"
	Config  string // sweep-point label
	Err     string
}

// VerifyResult summarizes a transparency-verification sweep.
type VerifyResult struct {
	// Checked counts every (benchmark, dataset, config) point digested.
	Checked int
	// Rows lists the failing points; empty means the §3.1 transparency
	// contract held everywhere.
	Rows []VerifyRow
}

// Failed reports the number of failing points.
func (r *VerifyResult) Failed() int { return len(r.Rows) }

// VerifySweepPoints is the configuration matrix the verification sweep
// covers: the off scheme (a genuine re-execution of the nil-reuse path),
// the default CRB plus every Figure 8 and ablation geometry, and the DTM
// and combined schemes at their default plus a stressed small-capacity DTM
// geometry (where eviction and re-recording churn is highest) —
// deduplicated by scheme key.
func VerifySweepPoints(s *Suite) []SweepPoint {
	base := s.cfg.Opts.CRB
	tc := s.cfg.Opts.DTM
	seen := map[string]bool{}
	var pts []SweepPoint
	add := func(label string, rc reuse.Config) {
		if k := rc.Key(); !seen[k] {
			seen[k] = true
			pts = append(pts, SweepPoint{Label: label, Reuse: rc})
		}
	}
	addCRB := func(label string, c crb.Config) { add(label, reuse.CCR(c)) }
	add("off", reuse.Config{Scheme: reuse.Off})
	addCRB("default", base)
	for _, ci := range []int{4, 8, 16} { // Figure 8a
		c := base
		c.Entries, c.Instances = 128, ci
		addCRB(fmt.Sprintf("128E,%dCI", ci), c)
	}
	for _, e := range []int{32, 64, 128} { // Figure 8b
		c := base
		c.Entries, c.Instances = e, 8
		addCRB(fmt.Sprintf("%dE,8CI", e), c)
	}
	for _, a := range []int{1, 2, 4} { // associativity ablation
		c := base
		c.Entries, c.Instances, c.Assoc = 32, 8, a
		addCRB(fmt.Sprintf("32E,8CI,%d-way", a), c)
	}
	for _, frac := range []float64{0, 0.5, 0.75, 1} { // no-mem ablation
		c := base
		c.Entries, c.Instances, c.NoMemEntriesFrac = 128, 8, frac
		addCRB(fmt.Sprintf("nomem=%.0f%%", 100*frac), c)
	}
	add("dtm", reuse.DTMOnly(tc))
	small := tc
	small.Entries, small.Assoc = 16, 1
	add("dtm-small", reuse.DTMOnly(small))
	add("both", reuse.Both(base, tc))
	return pts
}

// Verify runs the differential transparency check over every benchmark ×
// dataset × CRB configuration of the sweep matrix, plus a function-level
// compilation variant at the default geometry (exercising memoization-mode
// recording and ret-stream synthesis). Each point digests the CCR run and
// oracle.Compares it against the cached base digest; divergences and run
// errors degrade to rows of the result, never abort the sweep.
func Verify(s *Suite) (*VerifyResult, error) {
	points := VerifySweepPoints(s)
	datasets := []struct {
		name string
		args func(*workloads.Benchmark) []int64
	}{
		{"train", func(b *workloads.Benchmark) []int64 { return b.Train }},
		{"ref", func(b *workloads.Benchmark) []int64 { return b.Ref }},
	}

	flOpts := s.cfg.Opts
	flOpts.Region.FunctionLevel = true
	flCompiled := runner.NewCache()
	compiledFL := func(b *workloads.Benchmark) (*core.CompileResult, error) {
		v, err := flCompiled.Do(b.Name, func() (any, error) {
			ar, err := s.prepared(b)
			if err != nil {
				return nil, err
			}
			cr, err := core.CompileWith(b.Prog, ar, b.Train, flOpts)
			if err != nil {
				return nil, fmt.Errorf("verify: funclevel compile %s: %w", b.Name, err)
			}
			return cr, nil
		})
		if err != nil {
			return nil, err
		}
		return v.(*core.CompileResult), nil
	}

	// Cell layout: bench-major, then dataset, then config; the last config
	// index is the function-level variant.
	nc := len(points) + 1
	nd := len(datasets)
	n := len(s.Benches) * nd * nc
	decode := func(i int) (b *workloads.Benchmark, ds int, ci int) {
		return s.Benches[i/(nd*nc)], (i / nc) % nd, i % nc
	}
	label := func(ci int) string {
		if ci == len(points) {
			return "funclevel"
		}
		return points[ci].Label
	}
	errs := s.MapErrs(n,
		func(i int) string {
			b, ds, ci := decode(i)
			return fmt.Sprintf("verify/%s/%s/%s", b.Name, datasets[ds].name, label(ci))
		},
		func(i int) error {
			b, ds, ci := decode(i)
			args := datasets[ds].args(b)
			ref, err := s.BaseDigest(b, args)
			if err != nil {
				return err
			}
			var got oracle.Digest
			if ci == len(points) {
				cr, err := compiledFL(b)
				if err != nil {
					return err
				}
				got, err = core.DigestRun(cr.Prog, &flOpts.CRB, args, flOpts.Limit)
				if err != nil {
					return err
				}
			} else {
				got, err = s.ReuseDigest(b, args, points[ci].Reuse)
				if err != nil {
					return err
				}
			}
			return oracle.Compare(ref, got)
		})
	res := &VerifyResult{Checked: n}
	for i := range errs {
		if errs[i] == nil {
			continue
		}
		b, ds, ci := decode(i)
		res.Rows = append(res.Rows, VerifyRow{
			Bench: b.Name, Dataset: datasets[ds].name, Config: label(ci), Err: shortReason(errs[i]),
		})
	}
	return res, nil
}

// Render formats the verification summary: a single line when everything
// passed, or a table of the failing points.
func (r *VerifyResult) Render() string {
	head := fmt.Sprintf("Transparency verification: %d points checked, %d failed\n", r.Checked, r.Failed())
	if len(r.Rows) == 0 {
		return head
	}
	t := stats.Table{Header: []string{"benchmark", "dataset", "config", "error"}}
	for _, row := range r.Rows {
		t.Add(row.Bench, row.Dataset, row.Config, row.Err)
	}
	return head + t.String()
}
