package experiments

import (
	"fmt"
	"sort"

	"ccr/internal/ir"
	"ccr/internal/reuse"
	"ccr/internal/stats"
)

// Fig4Row is one benchmark's bar pair in Figure 4.
type Fig4Row struct {
	Bench     string
	BlockPct  float64 // % of dynamic execution reusable at block level
	RegionPct float64 // % reusable at region level
}

// Fig4Result is the dynamic reuse-potential study.
type Fig4Result struct {
	Rows                []Fig4Row
	AvgBlock, AvgRegion float64
	// Failed maps a benchmark whose cell failed to the failure reason; its
	// row renders as FAILED and is excluded from the averages.
	Failed map[string]string
}

// Figure4 reproduces the §2.3 limit study: block- vs region-level dynamic
// reuse potential with eight records per code segment. The per-benchmark
// limit studies are independent, so they fan out across the suite's pool.
// A failing benchmark degrades to a FAILED row instead of aborting.
func Figure4(s *Suite) (*Fig4Result, error) {
	rows := make([]Fig4Row, len(s.Benches))
	errs := s.MapErrs(len(s.Benches),
		func(i int) string { return "fig4/" + s.Benches[i].Name },
		func(i int) error {
			b := s.Benches[i]
			r, err := s.Limit(b)
			if err != nil {
				return err
			}
			rows[i] = Fig4Row{Bench: b.Name, BlockPct: r.BlockPct(), RegionPct: r.RegionPct()}
			return nil
		})
	res := &Fig4Result{Rows: rows, Failed: map[string]string{}}
	var blocks, regions []float64
	for i, row := range rows {
		if errs[i] != nil {
			res.Rows[i].Bench = s.Benches[i].Name
			res.Failed[s.Benches[i].Name] = shortReason(errs[i])
			continue
		}
		blocks = append(blocks, row.BlockPct)
		regions = append(regions, row.RegionPct)
	}
	res.AvgBlock = stats.Mean(blocks)
	res.AvgRegion = stats.Mean(regions)
	return res, nil
}

// Render formats the figure as a text table.
func (r *Fig4Result) Render() string {
	t := stats.Table{Header: []string{"benchmark", "block", "region"}}
	for _, row := range r.Rows {
		if reason, ok := r.Failed[row.Bench]; ok {
			t.Add(row.Bench, failCell(reason), failCell(reason))
			continue
		}
		t.Add(row.Bench, fmt.Sprintf("%.1f%%", row.BlockPct), fmt.Sprintf("%.1f%%", row.RegionPct))
	}
	t.Add("average", fmt.Sprintf("%.1f%%", r.AvgBlock), fmt.Sprintf("%.1f%%", r.AvgRegion))
	return "Figure 4: dynamic reuse potential (8-record histories)\n" + t.String()
}

// SweepPoint names one reuse-scheme configuration of a sweep: a label for
// table headers and manifest IDs plus the full scheme selection (ccr, dtm,
// both or off, with each backend's geometry). The classic Figure 8 sweeps
// build pure-CCR points via reuse.CCR.
type SweepPoint struct {
	Label string
	Reuse reuse.Config
}

// Fig8Result holds a speedup sweep: one column per configuration.
type Fig8Result struct {
	Points  []SweepPoint
	Rows    []string             // benchmark order
	Speedup map[string][]float64 // bench → speedup per point
	Avg     []float64            // per point
	// Failed maps a benchmark to per-point failure reasons ("" = cell ok);
	// failed cells render as FAILED and drop out of the per-point averages.
	Failed rowFailures
}

// sweep runs the (benchmark × configuration) product of a Figure 8-style
// study through the suite's worker pool. Each cell writes into its own
// slot of a preallocated matrix and aggregation walks the matrix in input
// order, so the rendered table is byte-identical to a serial run. Failed
// cells degrade to FAILED entries rather than aborting the sweep.
func sweep(s *Suite, points []SweepPoint) (*Fig8Result, error) {
	nb, np := len(s.Benches), len(points)
	rows := make([][]float64, nb)
	for i := range rows {
		rows[i] = make([]float64, np)
	}
	errs := s.MapErrs(nb*np,
		func(i int) string {
			return fmt.Sprintf("sweep/%s/%s", s.Benches[i/np].Name, points[i%np].Label)
		},
		func(i int) error {
			b, pt := s.Benches[i/np], points[i%np]
			sp, err := s.SpeedupPoint(b, b.Train, pt.Reuse)
			if err != nil {
				return err
			}
			rows[i/np][i%np] = sp
			return nil
		})
	res := &Fig8Result{Points: points, Speedup: map[string][]float64{}}
	sums := make([][]float64, np)
	for bi, b := range s.Benches {
		res.Rows = append(res.Rows, b.Name)
		res.Speedup[b.Name] = rows[bi]
		for pi := range points {
			if err := errs[bi*np+pi]; err != nil {
				res.Failed.set(b.Name, np, pi, err)
				continue
			}
			sums[pi] = append(sums[pi], rows[bi][pi])
		}
	}
	res.Avg = make([]float64, np)
	for i := range points {
		res.Avg[i] = stats.Mean(sums[i])
	}
	return res, nil
}

// Figure8a sweeps the number of computation instances per entry
// (128 entries × {4, 8, 16} CIs).
func Figure8a(s *Suite) (*Fig8Result, error) {
	base := s.cfg.Opts.CRB
	points := []SweepPoint{}
	for _, ci := range []int{4, 8, 16} {
		c := base
		c.Entries, c.Instances = 128, ci
		points = append(points, SweepPoint{Label: fmt.Sprintf("128E,%dCI", ci), Reuse: reuse.CCR(c)})
	}
	return sweep(s, points)
}

// Figure8b sweeps the number of computation entries
// ({32, 64, 128} entries × 8 CIs).
func Figure8b(s *Suite) (*Fig8Result, error) {
	base := s.cfg.Opts.CRB
	points := []SweepPoint{}
	for _, e := range []int{32, 64, 128} {
		c := base
		c.Entries, c.Instances = e, 8
		points = append(points, SweepPoint{Label: fmt.Sprintf("%dE,8CI", e), Reuse: reuse.CCR(c)})
	}
	return sweep(s, points)
}

// Render formats the sweep as a text table.
func (r *Fig8Result) Render(title string) string {
	head := append([]string{"benchmark"}, make([]string, len(r.Points))...)
	for i, p := range r.Points {
		head[i+1] = p.Label
	}
	t := stats.Table{Header: head}
	for _, b := range r.Rows {
		cells := []string{b}
		for pi, sp := range r.Speedup[b] {
			if reason := r.Failed.get(b, pi); reason != "" {
				cells = append(cells, failCell(reason))
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3f", sp))
		}
		t.Add(cells...)
	}
	avg := []string{"average"}
	for _, a := range r.Avg {
		avg = append(avg, fmt.Sprintf("%.3f", a))
	}
	t.Add(avg...)
	return title + "\n" + t.String()
}

// PaperGroups is the Figure 9 bucket list, in the paper's legend order.
var PaperGroups = []string{"SL_4", "SL_6", "SL_8", "MD_3_1", "MD_6_1", "MD_2_2", "MD_2_3"}

// GroupOf buckets a region the way Figure 9 does: SL_n includes stateless
// computations with up to n register inputs (excluding smaller listed
// groups); MD_n_m analogously for memory-dependent computations with m
// distinguishable objects.
func GroupOf(r *ir.Region) string {
	n := len(r.Inputs)
	if r.Class == ir.Stateless {
		switch {
		case n <= 4:
			return "SL_4"
		case n <= 6:
			return "SL_6"
		default:
			return "SL_8"
		}
	}
	switch len(r.MemObjects) {
	case 1:
		if n <= 3 {
			return "MD_3_1"
		}
		return "MD_6_1"
	case 2:
		return "MD_2_2"
	default:
		return "MD_2_3"
	}
}

// Fig9Result holds the static (a) and dynamic (b) computation-group
// distributions per benchmark, each row summing to ≤ 1.
type Fig9Result struct {
	Rows    []string
	Static  map[string]map[string]float64
	Dynamic map[string]map[string]float64
	// AvgStatic/AvgDynamic are the per-group averages across benchmarks.
	AvgStatic, AvgDynamic map[string]float64
	// AcyclicReplaced is the mean dynamic instructions an acyclic region
	// execution replaces (the paper reports ≈ 10).
	AcyclicReplaced float64
	// Failed maps a benchmark whose cell failed to the failure reason.
	Failed map[string]string
}

// fig9Cell is one benchmark's contribution, computed inside a pool cell.
type fig9Cell struct {
	static, dynamic map[string]float64
	acySum, acyN    float64
}

// Figure9 computes the computation-group distributions at the default CRB
// configuration, one parallel cell per benchmark; a failing benchmark
// degrades to a FAILED row.
func Figure9(s *Suite) (*Fig9Result, error) {
	cc := s.cfg.Opts.CRB
	cells := make([]fig9Cell, len(s.Benches))
	errs := s.MapErrs(len(s.Benches),
		func(i int) string { return "fig9/" + s.Benches[i].Name },
		func(i int) error {
			b := s.Benches[i]
			cr, err := s.Compiled(b)
			if err != nil {
				return err
			}
			run, err := s.CCRSim(b, b.Train, cc)
			if err != nil {
				return err
			}
			st := map[string]float64{}
			dy := map[string]float64{}
			var totStatic, totDyn float64
			cell := &cells[i]
			for _, rg := range cr.Prog.Regions {
				g := GroupOf(rg)
				st[g]++
				totStatic++
				if rs := run.Emu.Regions[rg.ID]; rs != nil {
					dy[g] += float64(rs.ReusedInstrs)
					totDyn += float64(rs.ReusedInstrs)
					if rg.Kind == ir.Acyclic && rs.Hits > 0 {
						cell.acySum += float64(rs.ReusedInstrs) / float64(rs.Hits)
						cell.acyN++
					}
				}
			}
			for g := range st {
				st[g] /= totStatic
			}
			if totDyn > 0 {
				for g := range dy {
					dy[g] /= totDyn
				}
			}
			cell.static, cell.dynamic = st, dy
			return nil
		})
	res := &Fig9Result{
		Static:     map[string]map[string]float64{},
		Dynamic:    map[string]map[string]float64{},
		AvgStatic:  map[string]float64{},
		AvgDynamic: map[string]float64{},
		Failed:     map[string]string{},
	}
	var acySum, acyN float64
	var ok []string
	for i, b := range s.Benches {
		res.Rows = append(res.Rows, b.Name)
		if errs[i] != nil {
			res.Failed[b.Name] = shortReason(errs[i])
			continue
		}
		ok = append(ok, b.Name)
		res.Static[b.Name] = cells[i].static
		res.Dynamic[b.Name] = cells[i].dynamic
		acySum += cells[i].acySum
		acyN += cells[i].acyN
	}
	for _, g := range PaperGroups {
		var sSum, dSum float64
		for _, b := range ok {
			sSum += res.Static[b][g]
			dSum += res.Dynamic[b][g]
		}
		if len(ok) > 0 {
			res.AvgStatic[g] = sSum / float64(len(ok))
			res.AvgDynamic[g] = dSum / float64(len(ok))
		}
	}
	if acyN > 0 {
		res.AcyclicReplaced = acySum / acyN
	}
	return res, nil
}

// Render formats both distributions.
func (r *Fig9Result) Render() string {
	render := func(title string, m map[string]map[string]float64, avg map[string]float64) string {
		head := append([]string{"benchmark"}, PaperGroups...)
		t := stats.Table{Header: head}
		for _, b := range r.Rows {
			cells := []string{b}
			if reason, ok := r.Failed[b]; ok {
				for range PaperGroups {
					cells = append(cells, failCell(reason))
				}
				t.Add(cells...)
				continue
			}
			for _, g := range PaperGroups {
				cells = append(cells, fmt.Sprintf("%.0f%%", 100*m[b][g]))
			}
			t.Add(cells...)
		}
		cells := []string{"average"}
		for _, g := range PaperGroups {
			cells = append(cells, fmt.Sprintf("%.0f%%", 100*avg[g]))
		}
		t.Add(cells...)
		return title + "\n" + t.String()
	}
	out := render("Figure 9(a): static computation-group distribution", r.Static, r.AvgStatic)
	out += "\n" + render("Figure 9(b): dynamic computation-group distribution", r.Dynamic, r.AvgDynamic)
	out += fmt.Sprintf("\nacyclic regions replace %.1f dynamic instructions per reuse on average\n", r.AcyclicReplaced)
	return out
}

// Fig10Result holds, per benchmark, the cumulative share of dynamic reuse
// contributed by the top 10/20/30/40 % of static computations.
type Fig10Result struct {
	Rows []string
	Top  map[string][4]float64
	Avg  [4]float64
	// Failed maps a benchmark whose cell failed to the failure reason.
	Failed map[string]string
}

// Figure10 computes the reuse-concentration distribution, one parallel
// cell per benchmark; a failing benchmark degrades to a FAILED row.
func Figure10(s *Suite) (*Fig10Result, error) {
	cc := s.cfg.Opts.CRB
	tops := make([][4]float64, len(s.Benches))
	errs := s.MapErrs(len(s.Benches),
		func(i int) string { return "fig10/" + s.Benches[i].Name },
		func(i int) error {
			b := s.Benches[i]
			cr, err := s.Compiled(b)
			if err != nil {
				return err
			}
			run, err := s.CCRSim(b, b.Train, cc)
			if err != nil {
				return err
			}
			contrib := make([]float64, 0, len(cr.Prog.Regions))
			var total float64
			for _, rg := range cr.Prog.Regions {
				v := 0.0
				if rs := run.Emu.Regions[rg.ID]; rs != nil {
					v = float64(rs.ReusedInstrs)
				}
				contrib = append(contrib, v)
				total += v
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(contrib)))
			if total > 0 && len(contrib) > 0 {
				for fi, frac := range []float64{0.1, 0.2, 0.3, 0.4} {
					n := int(frac*float64(len(contrib)) + 0.9999)
					if n < 1 {
						n = 1
					}
					if n > len(contrib) {
						n = len(contrib)
					}
					var sum float64
					for _, v := range contrib[:n] {
						sum += v
					}
					tops[i][fi] = sum / total
				}
			}
			return nil
		})
	res := &Fig10Result{Top: map[string][4]float64{}, Failed: map[string]string{}}
	var sums [4]float64
	var nOK int
	for bi, b := range s.Benches {
		res.Rows = append(res.Rows, b.Name)
		if errs[bi] != nil {
			res.Failed[b.Name] = shortReason(errs[bi])
			continue
		}
		nOK++
		res.Top[b.Name] = tops[bi]
		for i := range sums {
			sums[i] += tops[bi][i]
		}
	}
	if nOK > 0 {
		for i := range sums {
			res.Avg[i] = sums[i] / float64(nOK)
		}
	}
	return res, nil
}

// Render formats the concentration table.
func (r *Fig10Result) Render() string {
	t := stats.Table{Header: []string{"benchmark", "TOP 10%", "TOP 20%", "TOP 30%", "TOP 40%"}}
	for _, b := range r.Rows {
		if reason, ok := r.Failed[b]; ok {
			fc := failCell(reason)
			t.Add(b, fc, fc, fc, fc)
			continue
		}
		v := r.Top[b]
		t.Add(b, stats.Pct(v[0]), stats.Pct(v[1]), stats.Pct(v[2]), stats.Pct(v[3]))
	}
	t.Add("average", stats.Pct(r.Avg[0]), stats.Pct(r.Avg[1]), stats.Pct(r.Avg[2]), stats.Pct(r.Avg[3]))
	return "Figure 10: dynamic reuse by top static computations\n" + t.String()
}

// Fig11Row compares training- and reference-input speedups. TrainErr and
// RefErr are set (and the corresponding metrics zero) when that input's
// cell failed.
type Fig11Row struct {
	Bench          string
	TrainSpeedup   float64
	RefSpeedup     float64
	TrainElimFrac  float64 // reused instrs / base dynamic instrs
	RefElimFrac    float64
	TrainRepetElim float64 // reused instrs / region-level repetition
	RefRepetElim   float64
	TrainErr       string
	RefErr         string
}

// Fig11Result is the input-sensitivity study.
type Fig11Result struct {
	Rows []Fig11Row
	// Averages, over the cells that succeeded.
	AvgTrain, AvgRef         float64
	AvgTrainElim, AvgRefElim float64
	AvgTrainRep, AvgRefRep   float64
}

// Figure11 runs the transformed program (regions chosen on the training
// profile) on both inputs. Each (benchmark, input) pair is one parallel
// cell, so the training and reference runs of one benchmark overlap too;
// a failed cell degrades that half of the row to FAILED.
func Figure11(s *Suite) (*Fig11Result, error) {
	cc := s.cfg.Opts.CRB
	nb := len(s.Benches)
	rows := make([]Fig11Row, nb)
	for i, b := range s.Benches {
		rows[i].Bench = b.Name
	}
	inputName := [2]string{"train", "ref"}
	errs := s.MapErrs(2*nb,
		func(i int) string {
			return fmt.Sprintf("fig11/%s/%s", s.Benches[i/2].Name, inputName[i%2])
		},
		func(i int) error {
			b := s.Benches[i/2]
			args := b.Train
			if i%2 == 1 {
				args = b.Ref
			}
			sp, err := s.Speedup(b, args, cc)
			if err != nil {
				return err
			}
			baseRun, err := s.BaseSim(b, args)
			if err != nil {
				return err
			}
			ccrRun, err := s.CCRSim(b, args, cc)
			if err != nil {
				return err
			}
			elim := float64(ccrRun.Emu.ReusedInstrs) / float64(baseRun.Emu.DynInstrs)
			lim, err := s.LimitFor(b, args)
			if err != nil {
				return err
			}
			rep := 0.0
			if lim.InstrRepetition > 0 {
				rep = float64(ccrRun.Emu.ReusedInstrs) / float64(lim.InstrRepetition)
				if rep > 1 {
					rep = 1
				}
			}
			row := &rows[i/2]
			// The two input cells of one benchmark write disjoint fields.
			if i%2 == 0 {
				row.TrainSpeedup, row.TrainElimFrac, row.TrainRepetElim = sp, elim, rep
			} else {
				row.RefSpeedup, row.RefElimFrac, row.RefRepetElim = sp, elim, rep
			}
			return nil
		})
	for i := range errs {
		if errs[i] == nil {
			continue
		}
		row := &rows[i/2]
		if i%2 == 0 {
			row.TrainErr = shortReason(errs[i])
		} else {
			row.RefErr = shortReason(errs[i])
		}
	}
	res := &Fig11Result{}
	var trs, rfs, te, re, trp, rrp []float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		if row.TrainErr == "" {
			trs = append(trs, row.TrainSpeedup)
			te = append(te, row.TrainElimFrac)
			trp = append(trp, row.TrainRepetElim)
		}
		if row.RefErr == "" {
			rfs = append(rfs, row.RefSpeedup)
			re = append(re, row.RefElimFrac)
			rrp = append(rrp, row.RefRepetElim)
		}
	}
	res.AvgTrain = stats.Mean(trs)
	res.AvgRef = stats.Mean(rfs)
	res.AvgTrainElim = stats.Mean(te)
	res.AvgRefElim = stats.Mean(re)
	res.AvgTrainRep = stats.Mean(trp)
	res.AvgRefRep = stats.Mean(rrp)
	return res, nil
}

// Render formats the comparison table.
func (r *Fig11Result) Render() string {
	t := stats.Table{Header: []string{"benchmark", "train", "ref", "elim(train)", "elim(ref)", "rep-elim(train)", "rep-elim(ref)"}}
	for _, row := range r.Rows {
		trainCell := func(v string) string {
			if row.TrainErr != "" {
				return failCell(row.TrainErr)
			}
			return v
		}
		refCell := func(v string) string {
			if row.RefErr != "" {
				return failCell(row.RefErr)
			}
			return v
		}
		t.Add(row.Bench,
			trainCell(fmt.Sprintf("%.3f", row.TrainSpeedup)), refCell(fmt.Sprintf("%.3f", row.RefSpeedup)),
			trainCell(stats.Pct(row.TrainElimFrac)), refCell(stats.Pct(row.RefElimFrac)),
			trainCell(stats.Pct(row.TrainRepetElim)), refCell(stats.Pct(row.RefRepetElim)))
	}
	t.Add("average",
		fmt.Sprintf("%.3f", r.AvgTrain), fmt.Sprintf("%.3f", r.AvgRef),
		stats.Pct(r.AvgTrainElim), stats.Pct(r.AvgRefElim),
		stats.Pct(r.AvgTrainRep), stats.Pct(r.AvgRefRep))
	return "Figure 11: training vs reference input (128 entries, 8 CIs)\n" + t.String()
}
