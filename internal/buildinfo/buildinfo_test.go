package buildinfo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGetPopulatesIdentity(t *testing.T) {
	info := Get()
	if info.Module != "ccr" {
		t.Errorf("Module = %q, want ccr", info.Module)
	}
	if info.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if Get() != info {
		t.Error("Get is not stable across calls")
	}
}

func TestStringBanner(t *testing.T) {
	s := String()
	if !strings.Contains(s, "ccr") || !strings.Contains(s, Get().GoVersion) {
		t.Errorf("banner %q missing module or go version", s)
	}
}

func TestInfoSerializes(t *testing.T) {
	data, err := json.Marshal(Get())
	if err != nil {
		t.Fatal(err)
	}
	var back Info
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != Get() {
		t.Errorf("round trip diverged: %+v vs %+v", back, Get())
	}
}

func TestMismatch(t *testing.T) {
	stamped := Info{Module: "ccr", GoVersion: "go1.22", Revision: "abc123"}
	cases := []struct {
		name string
		a, b Info
		want bool // mismatch expected
	}{
		{"identical stamped", stamped, stamped, false},
		{"identical unstamped", Info{Module: "ccr", GoVersion: "go1.22"},
			Info{Module: "ccr", GoVersion: "go1.22"}, false},
		{"different revision", stamped,
			Info{Module: "ccr", GoVersion: "go1.22", Revision: "def456"}, true},
		{"one side unstamped", stamped,
			Info{Module: "ccr", GoVersion: "go1.22"}, true},
		{"dirty bit differs", stamped,
			Info{Module: "ccr", GoVersion: "go1.22", Revision: "abc123", Modified: true}, true},
		{"different module", stamped,
			Info{Module: "other", GoVersion: "go1.22", Revision: "abc123"}, true},
		{"unstamped different go", Info{Module: "ccr", GoVersion: "go1.22"},
			Info{Module: "ccr", GoVersion: "go1.21"}, true},
		{"self identity", Get(), Get(), false},
	}
	for _, c := range cases {
		reason := Mismatch(c.a, c.b)
		if (reason != "") != c.want {
			t.Errorf("%s: Mismatch = %q, want mismatch=%v", c.name, reason, c.want)
		}
		// Symmetry: mismatch detection must not depend on argument order.
		if (Mismatch(c.b, c.a) != "") != c.want {
			t.Errorf("%s: Mismatch not symmetric", c.name)
		}
	}
}
