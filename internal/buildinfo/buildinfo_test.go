package buildinfo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGetPopulatesIdentity(t *testing.T) {
	info := Get()
	if info.Module != "ccr" {
		t.Errorf("Module = %q, want ccr", info.Module)
	}
	if info.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if Get() != info {
		t.Error("Get is not stable across calls")
	}
}

func TestStringBanner(t *testing.T) {
	s := String()
	if !strings.Contains(s, "ccr") || !strings.Contains(s, Get().GoVersion) {
		t.Errorf("banner %q missing module or go version", s)
	}
}

func TestInfoSerializes(t *testing.T) {
	data, err := json.Marshal(Get())
	if err != nil {
		t.Fatal(err)
	}
	var back Info
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != Get() {
		t.Errorf("round trip diverged: %+v vs %+v", back, Get())
	}
}
