// Package buildinfo stamps binaries and run manifests with the build's
// identity: module version and the VCS revision Go embedded at build time.
// Every CLI exposes it behind -version, and runner.Manifest embeds it so a
// recorded experiment names the exact code that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the serializable build identity.
type Info struct {
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	// Modified is true when the working tree was dirty at build time.
	Modified bool `json:"vcs_modified,omitempty"`
}

var get = sync.OnceValue(func() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
})

// Get returns the build identity of the running binary (computed once).
func Get() Info { return get() }

// String renders the identity as a one-line -version banner.
func (i Info) String() string {
	mod, ver := i.Module, i.Version
	if mod == "" {
		mod = "ccr"
	}
	if ver == "" {
		ver = "(devel)"
	}
	s := fmt.Sprintf("%s %s %s", mod, ver, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Modified {
			s += " (modified)"
		}
		if i.Time != "" {
			s += " built " + i.Time
		}
	}
	return s
}

// String returns the running binary's -version banner.
func String() string { return Get().String() }

// Mismatch compares two build identities for the client/server version
// handshake and returns a human-readable reason when they identify
// different builds, or "" when they match. Two builds match when they come
// from the same module at the same VCS revision with the same dirty bit;
// when neither side carries a revision (e.g. `go run` or test binaries
// built outside VCS stamping), the module path and Go version must agree.
// A revision on exactly one side is a mismatch: one binary is traceable
// and the other is not, so equality cannot be established.
func Mismatch(a, b Info) string {
	if a.Module != b.Module {
		return fmt.Sprintf("module %q vs %q", a.Module, b.Module)
	}
	switch {
	case a.Revision == "" && b.Revision == "":
		if a.GoVersion != b.GoVersion {
			return fmt.Sprintf("unstamped builds with go %q vs %q", a.GoVersion, b.GoVersion)
		}
		return ""
	case a.Revision == "" || b.Revision == "":
		return fmt.Sprintf("vcs revision %q vs %q", a.Revision, b.Revision)
	case a.Revision != b.Revision:
		return fmt.Sprintf("vcs revision %q vs %q", a.Revision, b.Revision)
	case a.Modified != b.Modified:
		return fmt.Sprintf("same revision %q but dirty-tree bits %v vs %v",
			a.Revision, a.Modified, b.Modified)
	}
	return ""
}
