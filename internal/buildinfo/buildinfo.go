// Package buildinfo stamps binaries and run manifests with the build's
// identity: module version and the VCS revision Go embedded at build time.
// Every CLI exposes it behind -version, and runner.Manifest embeds it so a
// recorded experiment names the exact code that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the serializable build identity.
type Info struct {
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	// Modified is true when the working tree was dirty at build time.
	Modified bool `json:"vcs_modified,omitempty"`
}

var get = sync.OnceValue(func() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
})

// Get returns the build identity of the running binary (computed once).
func Get() Info { return get() }

// String renders the identity as a one-line -version banner.
func (i Info) String() string {
	mod, ver := i.Module, i.Version
	if mod == "" {
		mod = "ccr"
	}
	if ver == "" {
		ver = "(devel)"
	}
	s := fmt.Sprintf("%s %s %s", mod, ver, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Modified {
			s += " (modified)"
		}
		if i.Time != "" {
			s += " built " + i.Time
		}
	}
	return s
}

// String returns the running binary's -version banner.
func String() string { return Get().String() }
